#include "sial/opt/analysis.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/error.hpp"

namespace sia::sial::opt {

namespace {

constexpr int kModeAssign = static_cast<int>(AssignStmt::Op::kAssign);
constexpr int kModeAcc = static_cast<int>(AssignStmt::Op::kPlusAssign);

ArrayKind kind_of(const CompiledProgram& program, int array_id) {
  return program.arrays[static_cast<std::size_t>(array_id)].kind;
}

StaticAccess read_of(const BlockOperand& operand) {
  StaticAccess access;
  access.operand = operand;
  access.write = false;
  return access;
}

StaticAccess write_of(const CompiledProgram& program,
                      const BlockOperand& operand, bool full) {
  StaticAccess access;
  access.operand = operand;
  access.write = true;
  access.full_overwrite = full && !maybe_sliced(program, operand);
  return access;
}

StaticAccess whole_array_write(int array_id) {
  StaticAccess access;
  access.operand.array_id = array_id;
  access.operand.rank = 0;
  access.write = true;
  return access;
}

}  // namespace

// ---------------------------------------------------------------------
// Regions.

std::vector<Region> find_regions(const CompiledProgram& program) {
  std::vector<Region> regions;
  std::vector<int> stack;  // open region indices
  for (int pc = 0; pc < static_cast<int>(program.code.size()); ++pc) {
    const Instruction& instr = program.code[static_cast<std::size_t>(pc)];
    switch (instr.op) {
      case Opcode::kDoStart: {
        Region region;
        region.start_pc = pc;
        region.end_pc = instr.a1;
        region.index_id = instr.a0;
        region.super_id = instr.a2;
        region.index_ids.push_back(instr.a0);
        region.parent = stack.empty() ? -1 : stack.back();
        stack.push_back(static_cast<int>(regions.size()));
        regions.push_back(std::move(region));
        break;
      }
      case Opcode::kPardoStart: {
        Region region;
        region.start_pc = pc;
        region.end_pc = instr.a1;
        region.is_pardo = true;
        region.pardo_id = instr.a0;
        region.index_ids =
            program.pardos[static_cast<std::size_t>(instr.a0)].index_ids;
        region.parent = stack.empty() ? -1 : stack.back();
        stack.push_back(static_cast<int>(regions.size()));
        regions.push_back(std::move(region));
        break;
      }
      case Opcode::kDoEnd:
      case Opcode::kPardoEnd:
        SIA_CHECK(!stack.empty(), "unmatched loop end at pc " +
                                      std::to_string(pc));
        stack.pop_back();
        break;
      default:
        break;
    }
  }
  SIA_CHECK(stack.empty(), "unclosed loop region");
  return regions;
}

int innermost_region(const std::vector<Region>& regions, int pc) {
  int best = -1;
  for (std::size_t r = 0; r < regions.size(); ++r) {
    const Region& region = regions[r];
    if (region.start_pc < pc && pc < region.end_pc &&
        (best < 0 ||
         region.start_pc > regions[static_cast<std::size_t>(best)].start_pc)) {
      best = static_cast<int>(r);
    }
  }
  return best;
}

// ---------------------------------------------------------------------
// Control flow.

std::vector<int> successors(const CompiledProgram& program, int pc) {
  const Instruction& instr = program.code[static_cast<std::size_t>(pc)];
  switch (instr.op) {
    case Opcode::kJump:
    case Opcode::kExitLoop:
      return {instr.a0};
    case Opcode::kJumpIfFalse:
      return {pc + 1, instr.a0};
    case Opcode::kDoStart:
    case Opcode::kPardoStart:
      // Body, or straight past the end when the loop runs zero times.
      return {pc + 1, instr.a1 + 1};
    case Opcode::kDoEnd:
    case Opcode::kPardoEnd:
      // Back to the body for the next iteration, or fall out.
      return {instr.a0 + 1, pc + 1};
    case Opcode::kReturn:
    case Opcode::kHalt:
      return {};
    default:
      return {pc + 1};
  }
}

// ---------------------------------------------------------------------
// Operand shape facts.

bool maybe_sliced(const CompiledProgram& program,
                  const BlockOperand& operand) {
  const ArrayInfo& array =
      program.arrays[static_cast<std::size_t>(operand.array_id)];
  for (int d = 0; d < operand.rank; ++d) {
    const std::size_t ud = static_cast<std::size_t>(d);
    const int ref_id = operand.index_ids[ud];
    if (ref_id == kWildcardIndex) return true;
    const IndexType ref = program.indices[static_cast<std::size_t>(ref_id)].type;
    const IndexType decl =
        program.indices[static_cast<std::size_t>(array.index_ids[ud])].type;
    if (ref == IndexType::kSub && decl != IndexType::kSub) return true;
  }
  return false;
}

std::vector<StaticAccess> instruction_accesses(const CompiledProgram& program,
                                               const Instruction& instr) {
  std::vector<StaticAccess> access;
  switch (instr.op) {
    case Opcode::kBlockScalarOp: {
      // blocks[0] op= scalar.
      if (instr.a0 != kModeAssign) access.push_back(read_of(instr.blocks[0]));
      access.push_back(
          write_of(program, instr.blocks[0], instr.a0 == kModeAssign));
      break;
    }
    case Opcode::kBlockCopy:
    case Opcode::kBlockScaledCopy: {
      access.push_back(read_of(instr.blocks[1]));
      if (instr.a0 != kModeAssign) access.push_back(read_of(instr.blocks[0]));
      access.push_back(
          write_of(program, instr.blocks[0], instr.a0 == kModeAssign));
      break;
    }
    case Opcode::kBlockBinary: {
      access.push_back(read_of(instr.blocks[1]));
      access.push_back(read_of(instr.blocks[2]));
      if (instr.a0 != kModeAssign) access.push_back(read_of(instr.blocks[0]));
      access.push_back(
          write_of(program, instr.blocks[0], instr.a0 == kModeAssign));
      break;
    }
    case Opcode::kBlockDot:
      access.push_back(read_of(instr.blocks[0]));
      access.push_back(read_of(instr.blocks[1]));
      break;
    case Opcode::kGet:
    case Opcode::kRequest:
    case Opcode::kPrefetch:
      access.push_back(read_of(instr.blocks[0]));
      break;
    case Opcode::kPut:
    case Opcode::kPrepare:
      // Write-only destination, even when accumulating: the local
      // shadow accumulates without reading the remote block.
      access.push_back(read_of(instr.blocks[1]));
      access.push_back(
          write_of(program, instr.blocks[0], instr.a0 == 0));
      break;
    case Opcode::kAllocate:
    case Opcode::kDeallocate:
      access.push_back(write_of(program, instr.blocks[0], false));
      break;
    case Opcode::kExecute:
      for (const ExecOperand& earg : instr.eargs) {
        if (earg.kind == ExecOperand::Kind::kBlock) {
          access.push_back(read_of(earg.block));
        }
      }
      for (const ExecOperand& earg : instr.eargs) {
        if (earg.kind == ExecOperand::Kind::kBlock) {
          access.push_back(write_of(program, earg.block, false));
        }
      }
      break;
    case Opcode::kCreate:
    case Opcode::kDeleteArr:
    case Opcode::kCheckpoint:
    case Opcode::kRestoreArr:
      access.push_back(whole_array_write(instr.a0));
      break;
    default:
      break;
  }
  return access;
}

void compute_access_sets(CompiledProgram& program) {
  for (Instruction& instr : program.code) {
    instr.access = instruction_accesses(program, instr);
    instr.renames_dst = false;
    // Mirrors the dynamic rule in Interpreter::window_block_op exactly:
    // the destination is renamable when the op never reads it
    // (kBlockBinary reads its target only when accumulating) and it is a
    // never-sliced temp.
    bool reads_dst = true;
    switch (instr.op) {
      case Opcode::kBlockScalarOp:
      case Opcode::kBlockCopy:
      case Opcode::kBlockScaledCopy:
        reads_dst = instr.a0 != kModeAssign;
        break;
      case Opcode::kBlockBinary:
        reads_dst = instr.a0 == kModeAcc;
        break;
      default:
        continue;
    }
    instr.renames_dst =
        !reads_dst &&
        kind_of(program, instr.blocks[0].array_id) == ArrayKind::kTemp &&
        !maybe_sliced(program, instr.blocks[0]);
  }
  program.analyzed = true;
}

// ---------------------------------------------------------------------
// Nominal cost model.

long nominal_eval(const IntExpr& expr) {
  switch (expr.kind) {
    case IntExpr::Kind::kLiteral: return expr.literal;
    case IntExpr::Kind::kConstant: return kNominalConstant;
    case IntExpr::Kind::kAdd:
      return nominal_eval(*expr.lhs) + nominal_eval(*expr.rhs);
    case IntExpr::Kind::kSub:
      return nominal_eval(*expr.lhs) - nominal_eval(*expr.rhs);
    case IntExpr::Kind::kMul:
      return nominal_eval(*expr.lhs) * nominal_eval(*expr.rhs);
    case IntExpr::Kind::kDiv: {
      const long rhs = nominal_eval(*expr.rhs);
      return rhs == 0 ? nominal_eval(*expr.lhs) : nominal_eval(*expr.lhs) / rhs;
    }
  }
  return 1;
}

long nominal_extent(const CompiledProgram& program, int index_id) {
  const IndexInfo& index = program.indices[static_cast<std::size_t>(index_id)];
  if (index.type == IndexType::kSub && index.super_id >= 0) {
    return nominal_extent(program, index.super_id);
  }
  return std::max<long>(1, nominal_eval(index.high) - nominal_eval(index.low) +
                               1);
}

// ---------------------------------------------------------------------
// Window safety.

namespace {

// Ops the dataflow window can decode into entries (or that touch only
// the scalar stack, which stays on the scan thread). Anything else
// forces the window to drain and disqualifies the pardo.
bool window_decodable(Opcode op) {
  switch (op) {
    case Opcode::kNop:
    case Opcode::kPushNumber:
    case Opcode::kPushScalar:
    case Opcode::kPushIndex:
    case Opcode::kPushConst:
    case Opcode::kNeg:
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kMul:
    case Opcode::kDiv:
    case Opcode::kSqrt:
    case Opcode::kAbs:
    case Opcode::kExpFn:
    case Opcode::kCompare:
    case Opcode::kStoreScalar:
    case Opcode::kPrintTop:
    case Opcode::kPrintString:
    case Opcode::kBlockScalarOp:
    case Opcode::kBlockCopy:
    case Opcode::kBlockBinary:
    case Opcode::kBlockScaledCopy:
    case Opcode::kGet:
    case Opcode::kRequest:
    case Opcode::kPrefetch:
    case Opcode::kPut:
    case Opcode::kPrepare:
    case Opcode::kDoStart:
    case Opcode::kDoEnd:
      return true;
    default:
      return false;
  }
}

}  // namespace

void analyze_window_safety(CompiledProgram& program,
                           std::vector<Diag>& diags) {
  SIA_CHECK(program.analyzed,
            "analyze_window_safety requires access sets");
  const std::vector<Region> regions = find_regions(program);

  for (std::size_t p = 0; p < program.pardos.size(); ++p) {
    PardoInfo& pardo = program.pardos[p];
    pardo.window_safe = false;
    if (pardo.start_pc < 0 || pardo.end_pc < 0) continue;

    // The region of this pardo instance. A pardo body may be emitted
    // more than once (procedures are not — kCall is not decodable — so
    // pardo table ids map 1:1 to regions here).
    int region_id = -1;
    for (std::size_t r = 0; r < regions.size(); ++r) {
      if (regions[r].is_pardo && regions[r].pardo_id == static_cast<int>(p)) {
        region_id = static_cast<int>(r);
        break;
      }
    }
    if (region_id < 0) continue;

    bool safe = true;
    std::unordered_set<int> fetched_arrays;  // dist/served reads
    std::unordered_set<int> put_arrays;      // put/prepare targets

    for (int pc = pardo.start_pc + 1; pc < pardo.end_pc && safe; ++pc) {
      const Instruction& instr = program.code[static_cast<std::size_t>(pc)];
      if (!window_decodable(instr.op)) {
        safe = false;
        break;
      }
      for (const StaticAccess& access : instr.access) {
        const ArrayKind kind = kind_of(program, access.operand.array_id);
        if (kind != ArrayKind::kDistributed && kind != ArrayKind::kServed) {
          continue;
        }
        if (instr.op == Opcode::kPut || instr.op == Opcode::kPrepare) {
          if (access.write) {
            put_arrays.insert(access.operand.array_id);
          }
        } else if (!access.write) {
          fetched_arrays.insert(access.operand.array_id);
        } else {
          safe = false;  // a write to a remote array outside put/prepare
        }
      }
    }
    if (!safe) continue;

    // Scan-time gets of a later iteration must not race puts of an
    // earlier one still in the window: fetched and put arrays disjoint.
    for (const int array_id : fetched_arrays) {
      if (put_arrays.count(array_id) > 0) {
        safe = false;
        break;
      }
    }
    if (!safe) continue;

    // Per-temp renaming proof: in linear body order the first access
    // must be a full overwrite, created either directly at pardo depth
    // (renamed every iteration) or entirely within one inner do region.
    struct TempFacts {
      std::vector<int> pcs;           // accessing pcs, in order
      std::vector<int> region_ids;    // innermost region per access
      bool first_is_full_write = false;
      bool first_seen = false;
      int first_pc = -1;
    };
    std::unordered_map<int, TempFacts> temps;
    for (int pc = pardo.start_pc + 1; pc < pardo.end_pc; ++pc) {
      const Instruction& instr = program.code[static_cast<std::size_t>(pc)];
      for (const StaticAccess& access : instr.access) {
        if (kind_of(program, access.operand.array_id) != ArrayKind::kTemp) {
          continue;
        }
        TempFacts& facts = temps[access.operand.array_id];
        if (!facts.first_seen) {
          facts.first_seen = true;
          facts.first_pc = pc;
          facts.first_is_full_write = access.write && access.full_overwrite;
        }
        facts.pcs.push_back(pc);
        facts.region_ids.push_back(innermost_region(regions, pc));
      }
    }
    for (const auto& [array_id, facts] : temps) {
      const bool at_pardo_depth =
          !facts.region_ids.empty() && facts.region_ids.front() == region_id;
      const bool one_inner_region =
          !facts.region_ids.empty() && facts.region_ids.front() != region_id &&
          std::all_of(facts.region_ids.begin(), facts.region_ids.end(),
                      [&](int r) { return r == facts.region_ids.front(); });
      if (facts.first_is_full_write && (at_pardo_depth || one_inner_region)) {
        continue;
      }
      safe = false;
      Diag diag;
      diag.code = kDiagTempDefeatsRenaming;
      diag.message =
          "this pardo temp defeats renaming: '" +
          program.arrays[static_cast<std::size_t>(array_id)].name +
          "' is not fully overwritten before its first use each iteration";
      diag.range =
          program.code[static_cast<std::size_t>(facts.first_pc)].range;
      diag.notes.push_back(
          {program.code[static_cast<std::size_t>(pardo.start_pc)].range,
           "the dataflow window cannot span iterations of this pardo"});
      diags.push_back(std::move(diag));
    }
    pardo.window_safe = safe;
  }
}

}  // namespace sia::sial::opt
