#include "sial/opt/rewrite.hpp"

#include <algorithm>

namespace sia::sial::opt {

RewriteResult insert_instructions(CompiledProgram& program,
                                  std::vector<Insertion> insertions) {
  // Sort an index permutation so inserted_pc can be reported in the
  // caller's original order.
  std::vector<std::size_t> order(insertions.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return insertions[a].pos < insertions[b].pos;
                   });

  const int old_size = static_cast<int>(program.code.size());
  RewriteResult result;
  result.new_pc.resize(static_cast<std::size_t>(old_size) + 1);
  result.inserted_pc.resize(insertions.size());

  std::vector<Instruction> code;
  code.reserve(program.code.size() + insertions.size());
  std::size_t next = 0;
  for (int pc = 0; pc <= old_size; ++pc) {
    while (next < order.size() && insertions[order[next]].pos == pc) {
      result.inserted_pc[order[next]] = static_cast<int>(code.size());
      code.push_back(std::move(insertions[order[next]].instr));
      ++next;
    }
    result.new_pc[static_cast<std::size_t>(pc)] =
        static_cast<int>(code.size());
    if (pc < old_size) {
      code.push_back(std::move(program.code[static_cast<std::size_t>(pc)]));
    }
  }
  program.code = std::move(code);

  const auto remap = [&](int pc) {
    return pc >= 0 && pc <= old_size ? result.new_pc[static_cast<std::size_t>(
                                           pc)]
                                     : pc;
  };

  // Skip the freshly inserted instructions: their operands are already
  // expressed in final coordinates (and kPrefetch's a0/a1 are index
  // ids, not pcs).
  std::vector<bool> inserted(program.code.size(), false);
  for (const int pc : result.inserted_pc) {
    inserted[static_cast<std::size_t>(pc)] = true;
  }
  for (std::size_t pc = 0; pc < program.code.size(); ++pc) {
    if (inserted[pc]) continue;
    Instruction& instr = program.code[pc];
    switch (instr.op) {
      case Opcode::kPardoStart:
      case Opcode::kDoStart:
        instr.a1 = remap(instr.a1);
        break;
      case Opcode::kPardoEnd:
      case Opcode::kDoEnd:
      case Opcode::kJump:
      case Opcode::kJumpIfFalse:
      case Opcode::kExitLoop:
        instr.a0 = remap(instr.a0);
        break;
      default:
        break;
    }
  }
  for (PardoInfo& pardo : program.pardos) {
    pardo.start_pc = remap(pardo.start_pc);
    pardo.end_pc = remap(pardo.end_pc);
  }
  for (ProcInfo& proc : program.procs) {
    proc.entry_pc = remap(proc.entry_pc);
  }
  for (auto& [pc, text] : program.opt_notes) {
    pc = remap(pc);
  }
  return result;
}

}  // namespace sia::sial::opt
