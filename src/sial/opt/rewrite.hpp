// Bytecode rewriting: instruction insertion with pc remapping.
//
// Elimination passes replace instructions with kNop in place (no pcs
// move); only insertion (hoisted kPrefetch before a loop) shifts pcs,
// and every absolute pc stored in the program — jump targets, loop
// back-edges, pardo/proc table entries, opt_notes — must be remapped.
#pragma once

#include <utility>
#include <vector>

#include "sial/bytecode.hpp"

namespace sia::sial::opt {

struct Insertion {
  int pos = 0;  // the new instruction goes immediately BEFORE old pc `pos`
  Instruction instr;
};

struct RewriteResult {
  // new_pc[old_pc] for every old pc (plus one entry for the end-of-code
  // position, so end-exclusive ranges remap too).
  std::vector<int> new_pc;
  // Final pc of each inserted instruction, in `insertions` order.
  std::vector<int> inserted_pc;
};

// Inserts `insertions` (any order; stable for equal pos) and remaps
// every absolute pc in the program. kCall.a0 is a proc table id, not a
// pc, and is left alone; inserted instructions are not remapped.
RewriteResult insert_instructions(CompiledProgram& program,
                                  std::vector<Insertion> insertions);

}  // namespace sia::sial::opt
