// The SIAL mid-end: an optimizing pass pipeline over compiled bytecode,
// run between the compiler and program finalization (sip::launch).
//
// Levels:
//   -O0  untouched copy of the compiler's output (runtime behaves as if
//        no mid-end existed).
//   -O1  loop-invariant get/request hoisting to kPrefetch, redundant
//        barrier elimination, dead-store elimination, static read/write
//        sets + renaming proofs + pardo window-safety. All transforms
//        are bit-exact: -O1 results are identical to -O0.
//   -O2  everything in -O1 plus contraction-chain reassociation when a
//        nominal flop model proves the reassociated order strictly
//        cheaper (floating-point sums re-associate, so -O2 is bit-exact
//        only when the pattern does not fire; see docs/COMPILER.md).
//
// Every transform records an opt_note (pc -> text) for annotated
// disassembly and a source-ranged diagnostic explaining what it did.
#pragma once

#include <vector>

#include "sial/bytecode.hpp"
#include "sial/diag.hpp"

namespace sia::sial::opt {

struct OptResult {
  CompiledProgram program;
  std::vector<Diag> diagnostics;
};

OptResult optimize(const CompiledProgram& input, int level);

}  // namespace sia::sial::opt
