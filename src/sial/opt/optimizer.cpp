#include "sial/opt/optimizer.hpp"

#include <algorithm>
#include <array>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "sial/opt/analysis.hpp"
#include "sial/opt/rewrite.hpp"

namespace sia::sial::opt {

namespace {

constexpr int kModeAssign = static_cast<int>(AssignStmt::Op::kAssign);
constexpr int kBinMul = static_cast<int>(BinOp::kMul);

ArrayKind kind_of(const CompiledProgram& program, int array_id) {
  return program.arrays[static_cast<std::size_t>(array_id)].kind;
}

const std::string& array_name(const CompiledProgram& program, int array_id) {
  return program.arrays[static_cast<std::size_t>(array_id)].name;
}

bool same_operand(const BlockOperand& a, const BlockOperand& b) {
  if (a.array_id != b.array_id || a.rank != b.rank) return false;
  for (int d = 0; d < a.rank; ++d) {
    if (a.index_ids[static_cast<std::size_t>(d)] !=
        b.index_ids[static_cast<std::size_t>(d)]) {
      return false;
    }
  }
  return true;
}

std::string operand_text(const CompiledProgram& program,
                         const BlockOperand& operand) {
  std::string out = array_name(program, operand.array_id) + "(";
  for (int d = 0; d < operand.rank; ++d) {
    if (d > 0) out += ",";
    const int id = operand.index_ids[static_cast<std::size_t>(d)];
    out += id == kWildcardIndex
               ? "*"
               : program.indices[static_cast<std::size_t>(id)].name;
  }
  return out + ")";
}

// Turns the instruction at pc into a kNop carrying only its source
// range, and records why for annotated disassembly.
void nop_out(CompiledProgram& program, int pc, const std::string& note) {
  Instruction& instr = program.code[static_cast<std::size_t>(pc)];
  instr.op = Opcode::kNop;
  instr.a0 = instr.a1 = instr.a2 = -1;
  instr.f0 = 0.0;
  instr.blocks.clear();
  instr.eargs.clear();
  program.opt_notes.emplace_back(pc, note);
}

// -------------------------------------------------------------------
// Pass 1: loop-invariant get/request hoisting (kPrefetch).

// Ops whose presence anywhere in a do body disqualifies hoisting out of
// it: synchronization, opaque calls, whole-array mutation, and control
// flow that could skip the get.
bool blocks_hoisting(Opcode op) {
  switch (op) {
    case Opcode::kSipBarrier:
    case Opcode::kServerBarrier:
    case Opcode::kExecute:
    case Opcode::kCall:
    case Opcode::kCreate:
    case Opcode::kDeleteArr:
    case Opcode::kCheckpoint:
    case Opcode::kRestoreArr:
    case Opcode::kCollective:
    case Opcode::kJump:
    case Opcode::kJumpIfFalse:
    case Opcode::kExitLoop:
      return true;
    default:
      return false;
  }
}

void hoist_pass(CompiledProgram& program, std::vector<Diag>& diags) {
  const std::vector<Region> regions = find_regions(program);
  std::vector<Insertion> insertions;
  std::vector<std::string> insertion_notes;

  for (std::size_t r = 0; r < regions.size(); ++r) {
    const Region& region = regions[r];
    // Only plain do loops: every worker runs every iteration, so the
    // loop's gets are the worker's own. A pardo's iterations are
    // scattered across workers and chunked dynamically.
    if (region.is_pardo) continue;

    bool body_ok = true;
    std::unordered_set<int> put_arrays;
    for (int pc = region.start_pc + 1; pc < region.end_pc && body_ok; ++pc) {
      const Instruction& instr = program.code[static_cast<std::size_t>(pc)];
      if (blocks_hoisting(instr.op)) body_ok = false;
      if (instr.op == Opcode::kPut || instr.op == Opcode::kPrepare) {
        put_arrays.insert(instr.blocks[0].array_id);
      }
    }
    if (!body_ok) continue;

    // Index ids bound at the insertion point (just before kDoStart):
    // everything enclosing regions bind.
    std::unordered_set<int> bound;
    for (int a = region.parent; a >= 0;
         a = regions[static_cast<std::size_t>(a)].parent) {
      for (const int id : regions[static_cast<std::size_t>(a)].index_ids) {
        bound.insert(id);
      }
    }

    std::vector<BlockOperand> hoisted;  // dedup within this loop
    for (int pc = region.start_pc + 1; pc < region.end_pc; ++pc) {
      Instruction& instr = program.code[static_cast<std::size_t>(pc)];
      if (instr.op != Opcode::kGet && instr.op != Opcode::kRequest) continue;
      if (innermost_region(regions, pc) != static_cast<int>(r)) continue;
      const BlockOperand operand = instr.blocks[0];
      bool invariant = true;
      for (int d = 0; d < operand.rank && invariant; ++d) {
        const int id = operand.index_ids[static_cast<std::size_t>(d)];
        if (id == kWildcardIndex || bound.count(id) == 0) invariant = false;
      }
      if (!invariant) continue;
      if (put_arrays.count(operand.array_id) > 0) continue;

      const bool is_get = instr.op == Opcode::kGet;
      const bool duplicate =
          std::any_of(hoisted.begin(), hoisted.end(),
                      [&](const BlockOperand& h) {
                        return same_operand(h, operand);
                      });
      if (!duplicate) {
        hoisted.push_back(operand);
        Instruction prefetch;
        prefetch.op = Opcode::kPrefetch;
        prefetch.line = instr.line;
        prefetch.range = instr.range;
        prefetch.a0 = region.index_id;
        prefetch.a1 = region.super_id;
        prefetch.blocks.push_back(operand);
        insertions.push_back({region.start_pc, std::move(prefetch)});
        insertion_notes.push_back("hoisted: loop-invariant " +
                                  operand_text(program, operand));
      }

      Diag diag;
      diag.code = kDiagLoopInvariantGet;
      diag.message = std::string("this ") + (is_get ? "get" : "request") +
                     " is loop-invariant (hoisted)";
      diag.range = instr.range;
      diag.notes.push_back(
          {program.code[static_cast<std::size_t>(region.start_pc)].range,
           "hoisted to a prefetch before this loop"});
      diags.push_back(std::move(diag));

      nop_out(program, pc,
              std::string("eliminated: ") + (is_get ? "get" : "request") +
                  " hoisted to prefetch before enclosing loop");
    }
  }

  if (insertions.empty()) return;
  const RewriteResult rewrite =
      insert_instructions(program, std::move(insertions));
  for (std::size_t i = 0; i < rewrite.inserted_pc.size(); ++i) {
    program.opt_notes.emplace_back(rewrite.inserted_pc[i],
                                   insertion_notes[i]);
  }
}

// -------------------------------------------------------------------
// Pass 2: redundant barrier elimination.
//
// Two access classes — distributed arrays (synchronized by sip_barrier)
// and served arrays (synchronized by server_barrier). A barrier is
// redundant when, for BOTH classes, no write on one side pairs with an
// access on the other side within that class's current synchronization
// epoch. Facts are per-class booleans propagated over the CFG to a
// fixed point; barriers are removed one at a time (front to back) and
// the analysis rerun, so removing one barrier can never justify
// removing the next.

struct SyncFacts {
  // [0] = distributed class, [1] = served class.
  std::array<bool, 2> write{{false, false}};
  std::array<bool, 2> access{{false, false}};

  bool join(const SyncFacts& other) {
    bool changed = false;
    for (int c = 0; c < 2; ++c) {
      const std::size_t uc = static_cast<std::size_t>(c);
      if (other.write[uc] && !write[uc]) write[uc] = changed = true;
      if (other.access[uc] && !access[uc]) access[uc] = changed = true;
    }
    return changed;
  }
};

// Class effects of one instruction (not counting barrier resets).
SyncFacts instruction_effects(const CompiledProgram& program,
                              const Instruction& instr) {
  SyncFacts facts;
  switch (instr.op) {
    // kExecute's array effects are its earg access sets (superinstructions
    // only touch the blocks they are handed), and kCollective reduces
    // scalars, so neither clobbers. Calls are opaque, and checkpoint/
    // restore add file-system state beyond their whole-array access.
    case Opcode::kCall:
    case Opcode::kCheckpoint:
    case Opcode::kRestoreArr:
      for (int c = 0; c < 2; ++c) {
        facts.write[static_cast<std::size_t>(c)] = true;
        facts.access[static_cast<std::size_t>(c)] = true;
      }
      return facts;
    default:
      break;
  }
  for (const StaticAccess& access :
       instruction_accesses(program, instr)) {
    const ArrayKind kind = kind_of(program, access.operand.array_id);
    int c = -1;
    if (kind == ArrayKind::kDistributed) c = 0;
    if (kind == ArrayKind::kServed) c = 1;
    if (c < 0) continue;
    const std::size_t uc = static_cast<std::size_t>(c);
    facts.access[uc] = true;
    if (access.write) facts.write[uc] = true;
  }
  return facts;
}

int barrier_class(Opcode op) {
  if (op == Opcode::kSipBarrier) return 0;
  if (op == Opcode::kServerBarrier) return 1;
  return -1;
}

void eliminate_barriers(CompiledProgram& program, std::vector<Diag>& diags) {
  const int n = static_cast<int>(program.code.size());
  std::vector<bool> removed(static_cast<std::size_t>(n), false);

  const auto transfer_kind = [&](int pc) {
    return removed[static_cast<std::size_t>(pc)]
               ? -1
               : barrier_class(program.code[static_cast<std::size_t>(pc)].op);
  };

  for (;;) {
    // Forward: facts accumulated since each class's last live barrier.
    std::vector<SyncFacts> fwd_in(static_cast<std::size_t>(n));
    std::vector<bool> reachable(static_cast<std::size_t>(n), false);
    if (n > 0) reachable[0] = true;
    for (bool changed = true; changed;) {
      changed = false;
      for (int pc = 0; pc < n; ++pc) {
        if (!reachable[static_cast<std::size_t>(pc)]) continue;
        SyncFacts out = fwd_in[static_cast<std::size_t>(pc)];
        const int bk = transfer_kind(pc);
        if (bk >= 0) {
          out.write[static_cast<std::size_t>(bk)] = false;
          out.access[static_cast<std::size_t>(bk)] = false;
        } else {
          out.join(instruction_effects(
              program, program.code[static_cast<std::size_t>(pc)]));
        }
        for (const int succ : successors(program, pc)) {
          if (succ < 0 || succ >= n) continue;
          if (!reachable[static_cast<std::size_t>(succ)]) {
            reachable[static_cast<std::size_t>(succ)] = true;
            changed = true;
          }
          if (fwd_in[static_cast<std::size_t>(succ)].join(out)) {
            changed = true;
          }
        }
      }
    }

    // Backward: facts until each class's next live barrier.
    std::vector<SyncFacts> bwd_out(static_cast<std::size_t>(n));
    for (bool changed = true; changed;) {
      changed = false;
      for (int pc = n - 1; pc >= 0; --pc) {
        SyncFacts out;
        for (const int succ : successors(program, pc)) {
          if (succ < 0 || succ >= n) continue;
          SyncFacts in = bwd_out[static_cast<std::size_t>(succ)];
          const int bk = transfer_kind(succ);
          if (bk >= 0) {
            in.write[static_cast<std::size_t>(bk)] = false;
            in.access[static_cast<std::size_t>(bk)] = false;
          } else {
            in.join(instruction_effects(
                program, program.code[static_cast<std::size_t>(succ)]));
          }
          out.join(in);
        }
        if (bwd_out[static_cast<std::size_t>(pc)].join(out)) changed = true;
      }
    }

    int victim = -1;
    for (int pc = 0; pc < n && victim < 0; ++pc) {
      if (transfer_kind(pc) < 0) continue;
      if (!reachable[static_cast<std::size_t>(pc)]) continue;
      const SyncFacts& before = fwd_in[static_cast<std::size_t>(pc)];
      const SyncFacts& after = bwd_out[static_cast<std::size_t>(pc)];
      bool redundant = true;
      for (int c = 0; c < 2 && redundant; ++c) {
        const std::size_t uc = static_cast<std::size_t>(c);
        if ((before.write[uc] && after.access[uc]) ||
            (before.access[uc] && after.write[uc])) {
          redundant = false;
        }
      }
      if (redundant) victim = pc;
    }
    if (victim < 0) break;

    removed[static_cast<std::size_t>(victim)] = true;
    const Instruction& barrier =
        program.code[static_cast<std::size_t>(victim)];
    Diag diag;
    diag.code = kDiagRedundantBarrier;
    diag.message = "this barrier is redundant";
    diag.range = barrier.range;
    // Point at the nearest live barrier of the same kind (behind first,
    // then ahead): the common case is a defensive back-to-back pair.
    const int kind = barrier_class(barrier.op);
    int buddy = -1;
    for (int pc = victim - 1; pc >= 0 && buddy < 0; --pc) {
      if (transfer_kind(pc) == kind) buddy = pc;
    }
    for (int pc = victim + 1; pc < n && buddy < 0; ++pc) {
      if (transfer_kind(pc) == kind) buddy = pc;
    }
    if (buddy >= 0) {
      diag.notes.push_back(
          {program.code[static_cast<std::size_t>(buddy)].range,
           "no conflicting access separates it from this barrier"});
    }
    diags.push_back(std::move(diag));
    nop_out(program, victim,
            std::string("eliminated: redundant ") +
                opcode_name(barrier.op));
  }
}

// -------------------------------------------------------------------
// Pass 3: dead-store elimination.

// Control transfers, synchronization, and opaque ops end the
// straight-line window a dead-store scan may cross.
bool stops_dse_scan(Opcode op) {
  switch (op) {
    case Opcode::kJump:
    case Opcode::kJumpIfFalse:
    case Opcode::kDoStart:
    case Opcode::kDoEnd:
    case Opcode::kPardoStart:
    case Opcode::kPardoEnd:
    case Opcode::kExitLoop:
    case Opcode::kCall:
    case Opcode::kReturn:
    case Opcode::kHalt:
    case Opcode::kExecute:
    case Opcode::kSipBarrier:
    case Opcode::kServerBarrier:
    case Opcode::kCollective:
    case Opcode::kCheckpoint:
    case Opcode::kRestoreArr:
      return true;
    default:
      return false;
  }
}

void eliminate_dead_stores(CompiledProgram& program,
                           std::vector<Diag>& diags) {
  const int n = static_cast<int>(program.code.size());
  for (int pc = 0; pc < n; ++pc) {
    const Instruction& instr = program.code[static_cast<std::size_t>(pc)];
    // Only stack-neutral stores: kBlockScalarOp/kBlockScaledCopy pop
    // the scalar stack, so deleting them would unbalance it.
    if (instr.op != Opcode::kBlockCopy && instr.op != Opcode::kBlockBinary) {
      continue;
    }
    if (instr.a0 != kModeAssign) continue;
    const BlockOperand dst = instr.blocks[0];
    if (kind_of(program, dst.array_id) != ArrayKind::kTemp) continue;
    if (maybe_sliced(program, dst)) continue;
    // All sources local: deleting the store must not change message
    // traffic, and a remote fetch could legitimately fault.
    bool sources_local = true;
    for (std::size_t b = 1; b < instr.blocks.size(); ++b) {
      const ArrayKind kind = kind_of(program, instr.blocks[b].array_id);
      if (kind != ArrayKind::kStatic && kind != ArrayKind::kTemp &&
          kind != ArrayKind::kLocal) {
        sources_local = false;
      }
    }
    if (!sources_local) continue;

    int killer = -1;
    for (int look = pc + 1; look < n && killer < 0; ++look) {
      const Instruction& probe =
          program.code[static_cast<std::size_t>(look)];
      if (stops_dse_scan(probe.op)) break;
      bool aborted = false;
      for (const StaticAccess& access :
           instruction_accesses(program, probe)) {
        if (access.operand.array_id != dst.array_id) continue;
        if (!access.write) {
          aborted = true;  // the stored value is (or may be) used
          break;
        }
        if (access.full_overwrite && same_operand(access.operand, dst)) {
          killer = look;
        } else {
          aborted = true;  // partial or differently-addressed write
        }
        break;
      }
      if (aborted) break;
    }
    if (killer < 0) continue;

    Diag diag;
    diag.code = kDiagDeadStore;
    diag.message = "dead store to temp '" +
                   array_name(program, dst.array_id) + "' (eliminated)";
    diag.range = instr.range;
    diag.notes.push_back(
        {program.code[static_cast<std::size_t>(killer)].range,
         "fully overwritten here before any read"});
    diags.push_back(std::move(diag));
    nop_out(program, pc,
            "eliminated: dead store to " + operand_text(program, dst));
  }
}

// -------------------------------------------------------------------
// Pass 4 (-O2): contraction-chain reassociation.
//
//   t1 = A * B        (pc)        t2 = B * C        (pc)
//   D op= t1 * C      (pc + 1) -> D op= A * t2      (pc + 1)
//
// applied when a nominal flop model proves the right-association
// strictly cheaper and the index structure makes both associations
// compute the same Einstein sum.

using IdSet = std::set<int>;

IdSet ids_of(const BlockOperand& operand) {
  IdSet ids;
  for (int d = 0; d < operand.rank; ++d) {
    ids.insert(operand.index_ids[static_cast<std::size_t>(d)]);
  }
  return ids;
}

bool distinct_ids(const BlockOperand& operand) {
  if (operand.rank == 0) return false;
  IdSet ids = ids_of(operand);
  if (ids.count(kWildcardIndex) > 0) return false;
  return static_cast<int>(ids.size()) == operand.rank;
}

IdSet set_union(const IdSet& a, const IdSet& b) {
  IdSet out = a;
  out.insert(b.begin(), b.end());
  return out;
}

IdSet set_intersect(const IdSet& a, const IdSet& b) {
  IdSet out;
  for (const int id : a) {
    if (b.count(id) > 0) out.insert(id);
  }
  return out;
}

bool subset(const IdSet& a, const IdSet& b) {
  return std::all_of(a.begin(), a.end(),
                     [&](int id) { return b.count(id) > 0; });
}

// 2 * product of nominal extents over the union of both operands' ids:
// the multiply-add count of contracting x with y.
long contraction_flops(const CompiledProgram& program,
                       const BlockOperand& x, const BlockOperand& y) {
  long flops = 2;
  for (const int id : set_union(ids_of(x), ids_of(y))) {
    flops *= nominal_extent(program, id);
  }
  return flops;
}

void reassociate(CompiledProgram& program, std::vector<Diag>& diags) {
  // Whole-program reference counts per array: the intermediate must be
  // defined and consumed exactly here and nowhere else.
  std::unordered_map<int, int> refs;
  for (const Instruction& instr : program.code) {
    for (const BlockOperand& operand : instr.blocks) {
      ++refs[operand.array_id];
    }
    for (const ExecOperand& earg : instr.eargs) {
      if (earg.kind == ExecOperand::Kind::kBlock) {
        ++refs[earg.block.array_id];
      }
    }
  }

  int fresh = 0;
  const int n = static_cast<int>(program.code.size());
  for (int pc = 0; pc + 1 < n; ++pc) {
    Instruction& def = program.code[static_cast<std::size_t>(pc)];
    Instruction& use = program.code[static_cast<std::size_t>(pc) + 1];
    if (def.op != Opcode::kBlockBinary || def.a0 != kModeAssign ||
        def.a1 != kBinMul) {
      continue;
    }
    if (use.op != Opcode::kBlockBinary || use.a1 != kBinMul) continue;

    const BlockOperand t1 = def.blocks[0];
    if (kind_of(program, t1.array_id) != ArrayKind::kTemp) continue;
    if (refs[t1.array_id] != 2) continue;

    // Which source of `use` is the intermediate?
    int t1_slot = -1;
    if (use.blocks[1].array_id == t1.array_id) t1_slot = 1;
    else if (use.blocks[2].array_id == t1.array_id) t1_slot = 2;
    if (t1_slot < 0) continue;
    if (!same_operand(use.blocks[static_cast<std::size_t>(t1_slot)], t1)) {
      continue;  // permuted reference; leave it alone
    }

    const BlockOperand a = def.blocks[1];
    const BlockOperand b = def.blocks[2];
    const BlockOperand c = use.blocks[static_cast<std::size_t>(3 - t1_slot)];
    const BlockOperand d = use.blocks[0];

    if (!distinct_ids(a) || !distinct_ids(b) || !distinct_ids(c) ||
        !distinct_ids(d) || !distinct_ids(t1)) {
      continue;
    }
    if (maybe_sliced(program, a) || maybe_sliced(program, b) ||
        maybe_sliced(program, c) || maybe_sliced(program, d) ||
        maybe_sliced(program, t1)) {
      continue;
    }
    if (d.array_id == a.array_id || d.array_id == b.array_id ||
        d.array_id == c.array_id || d.array_id == t1.array_id) {
      continue;
    }

    const IdSet sa = ids_of(a), sb = ids_of(b), sc = ids_of(c),
                sd = ids_of(d), st1 = ids_of(t1);
    // Both stages must be proper contractions of the single Einstein
    // sum D = sum over (ids not in D) of A*B*C: the intermediate keeps
    // exactly the ids the rest of the chain still needs.
    if (!subset(st1, set_union(sa, sb))) continue;
    if (!subset(sd, set_union(st1, sc))) continue;
    if (st1 != set_intersect(set_union(sa, sb), set_union(sc, sd))) continue;

    // The mirrored intermediate of the right association, ordered by
    // appearance in B then C.
    const IdSet keep = set_intersect(set_union(sb, sc), set_union(sa, sd));
    std::vector<int> t2_ids;
    for (const BlockOperand* src : {&b, &c}) {
      for (int dd = 0; dd < src->rank; ++dd) {
        const int id = src->index_ids[static_cast<std::size_t>(dd)];
        if (keep.count(id) > 0 &&
            std::find(t2_ids.begin(), t2_ids.end(), id) == t2_ids.end()) {
          t2_ids.push_back(id);
        }
      }
    }
    if (t2_ids.empty() ||
        t2_ids.size() > static_cast<std::size_t>(blas::kMaxRank)) {
      continue;
    }

    BlockOperand t2;
    t2.rank = static_cast<int>(t2_ids.size());
    for (std::size_t dd = 0; dd < t2_ids.size(); ++dd) {
      t2.index_ids[dd] = t2_ids[dd];
    }
    const IdSet st2(t2_ids.begin(), t2_ids.end());
    if (!subset(sd, set_union(sa, st2))) continue;

    const long cost_left = contraction_flops(program, a, b) +
                           contraction_flops(program, t1, c);
    BlockOperand t2_for_cost = t2;  // array id irrelevant to the model
    t2_for_cost.array_id = t1.array_id;
    const long cost_right = contraction_flops(program, b, c) +
                            contraction_flops(program, a, t2_for_cost);
    if (cost_right >= cost_left) continue;

    // Materialize the new intermediate and rewrite both instructions.
    ArrayInfo t2_array;
    t2_array.name = "@reassoc" + std::to_string(fresh++);
    t2_array.kind = ArrayKind::kTemp;
    t2_array.index_ids = t2_ids;
    t2.array_id = static_cast<int>(program.arrays.size());
    program.arrays.push_back(std::move(t2_array));
    refs[t2.array_id] = 2;

    def.blocks = {t2, b, c};
    use.blocks = {d, a, t2};

    Diag diag;
    diag.code = kDiagReassociated;
    diag.message = "contraction chain reassociated: " +
                   operand_text(program, b) + " * " +
                   operand_text(program, c) + " is computed first (" +
                   std::to_string(cost_left) + " -> " +
                   std::to_string(cost_right) + " nominal flops)";
    diag.range = use.range;
    diag.notes.push_back(
        {def.range, "the discarded intermediate was defined here"});
    diags.push_back(std::move(diag));
    program.opt_notes.emplace_back(
        pc, "reassociated: now computes " + operand_text(program, t2));
    program.opt_notes.emplace_back(
        pc + 1, "reassociated: consumes " + operand_text(program, t2));

    ++pc;  // skip past the rewritten pair
  }
}

}  // namespace

OptResult optimize(const CompiledProgram& input, int level) {
  OptResult result;
  result.program = input;
  CompiledProgram& program = result.program;
  program.opt_level_applied = std::max(0, level);
  if (level <= 0) return result;

  hoist_pass(program, result.diagnostics);
  eliminate_barriers(program, result.diagnostics);
  eliminate_dead_stores(program, result.diagnostics);
  if (level >= 2) reassociate(program, result.diagnostics);

  compute_access_sets(program);
  analyze_window_safety(program, result.diagnostics);
  return result;
}

}  // namespace sia::sial::opt
