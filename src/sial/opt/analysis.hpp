// Static analyses over SIAL bytecode shared by the optimizer passes
// (src/sial/opt/optimizer.cpp): region (loop) structure, control-flow
// successors, symbolic per-instruction read/write sets, a nominal cost
// model for compile-time flop estimates, and the window-safety proof the
// threaded dataflow executor consumes.
//
// Everything here is conservative: analyses may say "don't know" (no
// access sets, not window-safe, maybe sliced) but must never claim a
// fact the runtime could contradict.
#pragma once

#include <vector>

#include "sial/bytecode.hpp"
#include "sial/diag.hpp"

namespace sia::sial::opt {

// ---------------------------------------------------------------------
// Region (loop) tree.

// One do/pardo nest in the instruction stream: [start_pc, end_pc] spans
// the kDoStart/kPardoStart through its matching end instruction.
struct Region {
  int start_pc = -1;
  int end_pc = -1;
  bool is_pardo = false;
  int pardo_id = -1;            // pardos table id (is_pardo only)
  int index_id = -1;            // loop index (do only)
  int super_id = -1;            // `do ii in i` super index (do only)
  std::vector<int> index_ids;   // every index this region binds
  int parent = -1;              // enclosing region, -1 at top level
};

// All regions in pre-order (outer before inner).
std::vector<Region> find_regions(const CompiledProgram& program);

// Index of the innermost region whose *body* contains pc
// (start_pc < pc < end_pc); -1 when pc is at top level.
int innermost_region(const std::vector<Region>& regions, int pc);

// ---------------------------------------------------------------------
// Control flow.

// Successor pcs of the instruction at pc. kCall is treated as falling
// through (the callee is analyzed separately and passes treat kCall as
// a clobber); kReturn/kHalt have no successors.
std::vector<int> successors(const CompiledProgram& program, int pc);

// ---------------------------------------------------------------------
// Operand shape facts.

// Static mirror of ResolvedProgram::resolve_operand's slicing rule: a
// dimension addressed by a kSub index whose declared dimension is not
// kSub selects a slice of the stored block. Wildcard dimensions are
// conservatively "maybe sliced" too (they never reach resolve_operand,
// but no pass should treat them as full blocks).
bool maybe_sliced(const CompiledProgram& program, const BlockOperand& operand);

// Symbolic read/write set of a single instruction, reads before writes.
// Mirrors the interpreter's data accesses: block operands of compute
// ops, fetch targets, put/prepare destinations (write-only, even when
// accumulating: the local shadow never reads the remote block), kExecute
// eargs (read and write each), and whole-array ops (create/delete/
// checkpoint/restore) as rank-0 writes.
std::vector<StaticAccess> instruction_accesses(const CompiledProgram& program,
                                               const Instruction& instr);

// Fills Instruction::access and Instruction::renames_dst for every
// instruction and sets program.analyzed.
void compute_access_sets(CompiledProgram& program);

// ---------------------------------------------------------------------
// Nominal cost model.

// Value bound to every symbolic constant when sizing index extents at
// compile time. The *relative* cost of two contraction orders is what
// matters; 32 keeps products comfortably inside long.
inline constexpr long kNominalConstant = 32;

// Evaluates a symbolic integer expression under the nominal binding.
long nominal_eval(const IntExpr& expr);

// Nominal element extent of an index (>= 1). Subindices inherit the
// extent of their super index.
long nominal_extent(const CompiledProgram& program, int index_id);

// ---------------------------------------------------------------------
// Window safety.

// Proves, per pardo, that the threaded engine's dataflow window may span
// iteration boundaries (PardoInfo::window_safe): the body contains only
// window-decodable ops, its fetched arrays are disjoint from its
// put/prepare targets, and every temp is fully overwritten before it is
// read. Temps that defeat renaming get a W002 diagnostic. Requires
// compute_access_sets to have run.
void analyze_window_safety(CompiledProgram& program, std::vector<Diag>& diags);

}  // namespace sia::sial::opt
