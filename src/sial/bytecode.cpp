#include "sial/bytecode.hpp"

namespace sia::sial {

const char* opcode_name(Opcode op) {
  switch (op) {
    case Opcode::kHalt: return "halt";
    case Opcode::kNop: return "nop";
    case Opcode::kPardoStart: return "pardo_start";
    case Opcode::kPardoEnd: return "pardo_end";
    case Opcode::kDoStart: return "do_start";
    case Opcode::kDoEnd: return "do_end";
    case Opcode::kJump: return "jump";
    case Opcode::kJumpIfFalse: return "jump_if_false";
    case Opcode::kCall: return "call";
    case Opcode::kReturn: return "return";
    case Opcode::kExitLoop: return "exit_loop";
    case Opcode::kPushNumber: return "push_number";
    case Opcode::kPushScalar: return "push_scalar";
    case Opcode::kPushIndex: return "push_index";
    case Opcode::kPushConst: return "push_const";
    case Opcode::kNeg: return "neg";
    case Opcode::kAdd: return "add";
    case Opcode::kSub: return "sub";
    case Opcode::kMul: return "mul";
    case Opcode::kDiv: return "div";
    case Opcode::kSqrt: return "sqrt";
    case Opcode::kAbs: return "abs";
    case Opcode::kExpFn: return "exp";
    case Opcode::kCompare: return "compare";
    case Opcode::kStoreScalar: return "store_scalar";
    case Opcode::kBlockDot: return "block_dot";
    case Opcode::kPrintTop: return "print_top";
    case Opcode::kPrintString: return "print_string";
    case Opcode::kBlockScalarOp: return "block_scalar_op";
    case Opcode::kBlockCopy: return "block_copy";
    case Opcode::kBlockBinary: return "block_binary";
    case Opcode::kBlockScaledCopy: return "block_scaled_copy";
    case Opcode::kGet: return "get";
    case Opcode::kRequest: return "request";
    case Opcode::kPut: return "put";
    case Opcode::kPrepare: return "prepare";
    case Opcode::kAllocate: return "allocate";
    case Opcode::kDeallocate: return "deallocate";
    case Opcode::kCreate: return "create";
    case Opcode::kDeleteArr: return "delete_array";
    case Opcode::kExecute: return "execute";
    case Opcode::kSipBarrier: return "sip_barrier";
    case Opcode::kServerBarrier: return "server_barrier";
    case Opcode::kCollective: return "collective";
    case Opcode::kCheckpoint: return "checkpoint";
    case Opcode::kRestoreArr: return "restore";
    case Opcode::kPrefetch: return "prefetch";
  }
  return "?";
}

std::string BlockOperand::to_string() const {
  std::string out = "a" + std::to_string(array_id) + "(";
  for (int d = 0; d < rank; ++d) {
    if (d > 0) out += ",";
    const int id = index_ids[static_cast<std::size_t>(d)];
    out += id == kWildcardIndex ? "*" : "i" + std::to_string(id);
  }
  return out + ")";
}

namespace {
template <typename T>
int find_by_name(const std::vector<T>& table, const std::string& name) {
  for (std::size_t i = 0; i < table.size(); ++i) {
    if (table[i].name == name) return static_cast<int>(i);
  }
  return -1;
}
}  // namespace

int CompiledProgram::index_id(const std::string& name) const {
  return find_by_name(indices, name);
}

int CompiledProgram::array_id(const std::string& name) const {
  return find_by_name(arrays, name);
}

int CompiledProgram::scalar_id(const std::string& name) const {
  return find_by_name(scalars, name);
}

}  // namespace sia::sial
