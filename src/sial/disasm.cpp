#include "sial/disasm.hpp"

#include <sstream>

namespace sia::sial {

namespace {

std::string operand_string(const CompiledProgram& program,
                           const BlockOperand& operand) {
  std::string out =
      program.arrays[static_cast<std::size_t>(operand.array_id)].name + "(";
  for (int d = 0; d < operand.rank; ++d) {
    if (d > 0) out += ",";
    const int id = operand.index_ids[static_cast<std::size_t>(d)];
    out += id == kWildcardIndex
               ? "*"
               : program.indices[static_cast<std::size_t>(id)].name;
  }
  return out + ")";
}

}  // namespace

std::string disassemble_instruction(const CompiledProgram& program, int pc) {
  const Instruction& instr = program.code[static_cast<std::size_t>(pc)];
  std::ostringstream out;
  out << pc << ": " << opcode_name(instr.op);
  switch (instr.op) {
    case Opcode::kPushNumber:
      out << " " << instr.f0;
      break;
    case Opcode::kPushScalar:
    case Opcode::kStoreScalar:
      out << " " << program.scalars[static_cast<std::size_t>(instr.a0)].name;
      if (instr.op == Opcode::kStoreScalar) out << " mode=" << instr.a1;
      break;
    case Opcode::kPushIndex:
      out << " " << program.indices[static_cast<std::size_t>(instr.a0)].name;
      break;
    case Opcode::kPushConst:
      out << " "
          << program.constants[static_cast<std::size_t>(instr.a0)];
      break;
    case Opcode::kPrintString:
      out << " \"" << program.strings[static_cast<std::size_t>(instr.a0)]
          << "\"";
      break;
    case Opcode::kDoStart:
      out << " " << program.indices[static_cast<std::size_t>(instr.a0)].name;
      if (instr.a2 >= 0) {
        out << " in "
            << program.indices[static_cast<std::size_t>(instr.a2)].name;
      }
      out << " end=" << instr.a1;
      break;
    case Opcode::kPardoStart: {
      const PardoInfo& pardo =
          program.pardos[static_cast<std::size_t>(instr.a0)];
      out << " [";
      for (std::size_t d = 0; d < pardo.index_ids.size(); ++d) {
        if (d > 0) out << ",";
        out << program.indices[static_cast<std::size_t>(pardo.index_ids[d])]
                   .name;
      }
      out << "] end=" << instr.a1;
      break;
    }
    case Opcode::kJump:
    case Opcode::kJumpIfFalse:
    case Opcode::kDoEnd:
    case Opcode::kPardoEnd:
    case Opcode::kExitLoop:
      out << " -> " << instr.a0;
      break;
    case Opcode::kCall:
      out << " " << program.procs[static_cast<std::size_t>(instr.a0)].name;
      break;
    case Opcode::kExecute:
      out << " "
          << program
                 .superinstructions[static_cast<std::size_t>(instr.a0)];
      break;
    case Opcode::kCreate:
    case Opcode::kDeleteArr:
    case Opcode::kCheckpoint:
    case Opcode::kRestoreArr:
      out << " " << program.arrays[static_cast<std::size_t>(instr.a0)].name;
      break;
    case Opcode::kCompare:
      out << " " << cmp_op_name(static_cast<CmpOp>(instr.a0));
      break;
    case Opcode::kPrefetch:
      out << " guard="
          << program.indices[static_cast<std::size_t>(instr.a0)].name;
      if (instr.a1 >= 0) {
        out << " in "
            << program.indices[static_cast<std::size_t>(instr.a1)].name;
      }
      break;
    default:
      if (instr.a0 >= 0 &&
          (instr.op == Opcode::kBlockScalarOp ||
           instr.op == Opcode::kBlockCopy ||
           instr.op == Opcode::kBlockBinary ||
           instr.op == Opcode::kBlockScaledCopy || instr.op == Opcode::kPut ||
           instr.op == Opcode::kPrepare)) {
        out << " mode=" << instr.a0;
      }
      break;
  }
  for (const BlockOperand& operand : instr.blocks) {
    out << " " << operand_string(program, operand);
  }
  for (const ExecOperand& arg : instr.eargs) {
    switch (arg.kind) {
      case ExecOperand::Kind::kBlock:
        out << " " << operand_string(program, arg.block);
        break;
      case ExecOperand::Kind::kScalar:
        out << " "
            << program.scalars[static_cast<std::size_t>(arg.slot)].name;
        break;
      case ExecOperand::Kind::kString:
        out << " \"" << program.strings[static_cast<std::size_t>(arg.slot)]
            << "\"";
        break;
      case ExecOperand::Kind::kNumber:
        out << " " << arg.number;
        break;
    }
  }
  return out.str();
}

namespace {

// Trailing annotation for one instruction from the optimizer's static
// facts; empty when there is nothing to say.
std::string annotate_instruction(const CompiledProgram& program, int pc) {
  const Instruction& instr = program.code[static_cast<std::size_t>(pc)];
  std::ostringstream out;
  if (!instr.access.empty()) {
    std::string reads, writes;
    for (const StaticAccess& access : instr.access) {
      std::string& side = access.write ? writes : reads;
      if (!side.empty()) side += ",";
      side += operand_string(program, access.operand);
      if (access.write && access.full_overwrite) side += "!";
    }
    out << "  ; R={" << reads << "} W={" << writes << "}";
    if (instr.renames_dst) out << " renames";
  }
  if (instr.op == Opcode::kPardoStart &&
      program.pardos[static_cast<std::size_t>(instr.a0)].window_safe) {
    out << (instr.access.empty() ? "  ;" : "") << " window-safe";
  }
  for (const auto& [note_pc, text] : program.opt_notes) {
    if (note_pc == pc) {
      out << "  ; " << text;
    }
  }
  return out.str();
}

}  // namespace

std::string disassemble(const CompiledProgram& program) {
  std::ostringstream out;
  out << "program " << program.name << "\n";
  out << "  indices:";
  for (const IndexInfo& index : program.indices) {
    out << " " << index.name << ":" << index_type_name(index.type);
  }
  out << "\n  arrays:";
  for (const ArrayInfo& array : program.arrays) {
    out << " " << array.name << ":" << (array.sparse ? "sparse " : "")
        << array_kind_name(array.kind) << "/" << array.rank();
  }
  out << "\n  scalars:";
  for (const ScalarInfo& scalar : program.scalars) out << " " << scalar.name;
  out << "\n  constants:";
  for (const std::string& name : program.constants) out << " " << name;
  out << "\n  super instructions:";
  for (const std::string& name : program.superinstructions) {
    out << " " << name;
  }
  out << "\n";
  for (int pc = 0; pc < static_cast<int>(program.code.size()); ++pc) {
    out << "  " << disassemble_instruction(program, pc) << "\n";
  }
  return out.str();
}

std::string disassemble_annotated(const CompiledProgram& program) {
  std::ostringstream out;
  out << "program " << program.name << " ; opt level "
      << program.opt_level_applied
      << (program.analyzed ? " (analyzed)" : "") << "\n";
  for (int pc = 0; pc < static_cast<int>(program.code.size()); ++pc) {
    out << "  " << disassemble_instruction(program, pc)
        << annotate_instruction(program, pc) << "\n";
  }
  return out.str();
}

}  // namespace sia::sial
