// Source-ranged, multi-note diagnostics for the SIAL tool chain.
//
// A Diag is one primary message anchored to a source range plus any
// number of secondary notes anchored to their own ranges (the style of
// quirrel's SQCompilationContext): the optimizer explains *what* it did
// at the primary location and *why* with notes pointing at the evidence
// ("hoisted before this loop", "first conflicting access is here").
//
// render() produces the familiar caret form:
//
//   <file>:12:5: warning: this get is loop-invariant (hoisted) [W003]
//       get V(a,i)
//       ^~~~~~~~~~
//   <file>:11:3: note: hoisted before this loop
//       do k
//       ^~~~
#pragma once

#include <string>
#include <vector>

#include "sial/source.hpp"

namespace sia::sial {

struct Diag {
  enum class Severity { kNote, kWarning, kError };

  struct Note {
    SrcRange range;
    std::string message;
  };

  Severity severity = Severity::kWarning;
  std::string code;     // stable id, e.g. "W001"
  std::string message;  // primary text
  SrcRange range;       // primary anchor
  std::vector<Note> notes;
};

// Stable warning codes emitted by the optimizer (docs/COMPILER.md).
inline constexpr const char* kDiagRedundantBarrier = "W001";
inline constexpr const char* kDiagTempDefeatsRenaming = "W002";
inline constexpr const char* kDiagLoopInvariantGet = "W003";
inline constexpr const char* kDiagDeadStore = "W004";
inline constexpr const char* kDiagReassociated = "W005";

// Renders one diagnostic (with its notes) against the source text it
// refers to. `file` is the display name; pass "<sial>" when the program
// did not come from a file. Every emitted line ends with '\n'.
std::string render_diag(const Diag& diag, const std::string& source,
                        const std::string& file = "<sial>");

// All diagnostics, concatenated in order.
std::string render_diags(const std::vector<Diag>& diags,
                         const std::string& source,
                         const std::string& file = "<sial>");

}  // namespace sia::sial
