#include "sial/program.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace sia::sial {

namespace {

// Raw pardo spaces beyond this are certainly a mistake at interpreter
// scale (the simulator handles cluster-scale spaces analytically).
constexpr std::int64_t kMaxPardoSpace = 64ll * 1000 * 1000;

long eval_cmp(CmpOp op, long lhs, long rhs) {
  switch (op) {
    case CmpOp::kLt: return lhs < rhs;
    case CmpOp::kLe: return lhs <= rhs;
    case CmpOp::kGt: return lhs > rhs;
    case CmpOp::kGe: return lhs >= rhs;
    case CmpOp::kEq: return lhs == rhs;
    case CmpOp::kNe: return lhs != rhs;
  }
  return 0;
}

}  // namespace

ResolvedProgram::ResolvedProgram(CompiledProgram program,
                                 const SipConfig& config)
    : program_(std::move(program)), config_(config) {
  config_.validate();
  constant_values_.reserve(program_.constants.size());
  for (const std::string& name : program_.constants) {
    auto it = config_.constants.find(name);
    if (it == config_.constants.end()) {
      throw Error("program '" + program_.name + "' uses constant '" + name +
                  "' which is not defined in the SIP configuration");
    }
    constant_values_.push_back(static_cast<double>(it->second));
  }
  resolve_indices();
  resolve_arrays();
}

long ResolvedProgram::eval_int_expr(const IntExpr& expr) const {
  switch (expr.kind) {
    case IntExpr::Kind::kLiteral:
      return expr.literal;
    case IntExpr::Kind::kConstant: {
      auto it = config_.constants.find(expr.constant);
      if (it == config_.constants.end()) {
        throw Error("undefined symbolic constant '" + expr.constant + "'");
      }
      return it->second;
    }
    case IntExpr::Kind::kAdd:
      return eval_int_expr(*expr.lhs) + eval_int_expr(*expr.rhs);
    case IntExpr::Kind::kSub:
      return eval_int_expr(*expr.lhs) - eval_int_expr(*expr.rhs);
    case IntExpr::Kind::kMul:
      return eval_int_expr(*expr.lhs) * eval_int_expr(*expr.rhs);
    case IntExpr::Kind::kDiv: {
      const long rhs = eval_int_expr(*expr.rhs);
      if (rhs == 0) throw Error("division by zero in constant expression");
      return eval_int_expr(*expr.lhs) / rhs;
    }
  }
  return 0;
}

void ResolvedProgram::resolve_indices() {
  indices_.resize(program_.indices.size());
  // First pass: all non-sub indices.
  for (std::size_t i = 0; i < program_.indices.size(); ++i) {
    const IndexInfo& info = program_.indices[i];
    if (info.type == IndexType::kSub) continue;
    ResolvedIndex& resolved = indices_[i];
    resolved.name = info.name;
    resolved.type = info.type;
    resolved.low = eval_int_expr(info.low);
    resolved.high = eval_int_expr(info.high);
    if (resolved.low < 1 || resolved.high < resolved.low) {
      throw Error("index '" + info.name + "' has bad range [" +
                  std::to_string(resolved.low) + ", " +
                  std::to_string(resolved.high) + "]");
    }
    resolved.segment_size =
        info.type == IndexType::kSimple
            ? 1
            : config_.segment_for(index_type_name(info.type));
    if ((resolved.low - 1) % resolved.segment_size != 0) {
      throw Error("index '" + info.name + "' low bound " +
                  std::to_string(resolved.low) +
                  " does not fall on a segment boundary (segment size " +
                  std::to_string(resolved.segment_size) + ")");
    }
    resolved.seg_lo =
        static_cast<int>((resolved.low - 1) / resolved.segment_size) + 1;
    resolved.seg_hi =
        static_cast<int>((resolved.high - 1) / resolved.segment_size) + 1;
  }
  // Second pass: subindices.
  for (std::size_t i = 0; i < program_.indices.size(); ++i) {
    const IndexInfo& info = program_.indices[i];
    if (info.type != IndexType::kSub) continue;
    ResolvedIndex& resolved = indices_[i];
    const ResolvedIndex& super =
        indices_[static_cast<std::size_t>(info.super_id)];
    resolved.name = info.name;
    resolved.type = IndexType::kSub;
    resolved.super_id = info.super_id;
    resolved.subs_per_segment = config_.subsegments_per_segment;
    if (super.segment_size % resolved.subs_per_segment != 0) {
      throw Error("subindex '" + info.name + "': segment size " +
                  std::to_string(super.segment_size) +
                  " is not divisible by subsegments_per_segment " +
                  std::to_string(resolved.subs_per_segment));
    }
    resolved.segment_size = super.segment_size / resolved.subs_per_segment;
    resolved.low = super.low;
    resolved.high = super.high;
    resolved.seg_lo =
        static_cast<int>((resolved.low - 1) / resolved.segment_size) + 1;
    resolved.seg_hi =
        static_cast<int>((resolved.high - 1) / resolved.segment_size) + 1;
  }
}

void ResolvedProgram::resolve_arrays() {
  arrays_.resize(program_.arrays.size());
  for (std::size_t i = 0; i < program_.arrays.size(); ++i) {
    const ArrayInfo& info = program_.arrays[i];
    ResolvedArray& array = arrays_[i];
    array.name = info.name;
    array.kind = info.kind;
    array.sparse = info.sparse;
    array.index_ids = info.index_ids;
    array.total_blocks = 1;
    array.max_block_elements = 1;
    array.total_elements = 1;
    for (const int index_id : info.index_ids) {
      const ResolvedIndex& index =
          indices_[static_cast<std::size_t>(index_id)];
      array.num_segments.push_back(index.num_values());
      array.seg_lo.push_back(index.seg_lo);
      array.total_blocks *= index.num_values();
      array.max_block_elements *=
          static_cast<std::size_t>(index.segment_size);
      array.total_elements *=
          static_cast<std::size_t>(index.high - index.low + 1);
    }
  }
}

BlockSelector ResolvedProgram::resolve_operand(
    const BlockOperand& operand, std::span<const long> index_values) const {
  const ResolvedArray& array =
      arrays_[static_cast<std::size_t>(operand.array_id)];
  SIA_CHECK(operand.rank == array.rank(), "operand rank mismatch");

  BlockSelector selector;
  selector.array_id = operand.array_id;
  selector.rank = operand.rank;

  for (int d = 0; d < operand.rank; ++d) {
    const std::size_t ud = static_cast<std::size_t>(d);
    const int ref_id = operand.index_ids[ud];
    if (ref_id == kWildcardIndex) {
      throw RuntimeError("wildcard index in a computational operand of '" +
                         array.name + "'");
    }
    const ResolvedIndex& ref = indices_[static_cast<std::size_t>(ref_id)];
    const ResolvedIndex& decl =
        indices_[static_cast<std::size_t>(array.index_ids[ud])];
    const long value = index_values[static_cast<std::size_t>(ref_id)];
    if (value == kUndefinedIndexValue) {
      throw RuntimeError("index '" + ref.name +
                         "' used without a value (array '" + array.name +
                         "')");
    }
    if (value < ref.seg_lo || value > ref.seg_hi) {
      throw RuntimeError("index '" + ref.name + "' value " +
                         std::to_string(value) + " outside its range");
    }

    if (ref.type == IndexType::kSub && decl.type != IndexType::kSub) {
      // Slice: subindex addressing a super-typed dimension.
      const long start = ref.segment_start(static_cast<int>(value));
      const int super_seg =
          static_cast<int>((start - 1) / decl.segment_size) + 1;
      const int local = super_seg - array.seg_lo[ud] + 1;
      if (local < 1 || local > array.num_segments[ud]) {
        throw RuntimeError("subindex '" + ref.name +
                           "' addresses outside array '" + array.name + "'");
      }
      selector.sliced = true;
      selector.dim_local[ud] = local;
      selector.slice_origin[ud] =
          static_cast<int>(start - decl.segment_start(super_seg));
      selector.extents[ud] = ref.segment_extent(static_cast<int>(value));
      selector.block_extents[ud] = decl.segment_extent(super_seg);
      selector.first_element[ud] = start;
      continue;
    }

    if (ref.segment_size != decl.segment_size) {
      throw RuntimeError(
          "index '" + ref.name + "' (segment size " +
          std::to_string(ref.segment_size) + ") is incompatible with "
          "dimension " + std::to_string(d + 1) + " of '" + array.name +
          "' (segment size " + std::to_string(decl.segment_size) + ")");
    }
    const int local = static_cast<int>(value) - array.seg_lo[ud] + 1;
    if (local < 1 || local > array.num_segments[ud]) {
      throw RuntimeError("index '" + ref.name + "' value " +
                         std::to_string(value) +
                         " addresses outside array '" + array.name + "'");
    }
    selector.dim_local[ud] = local;
    selector.slice_origin[ud] = 0;
    selector.extents[ud] = decl.segment_extent(static_cast<int>(value));
    selector.block_extents[ud] = selector.extents[ud];
    selector.first_element[ud] = decl.segment_start(static_cast<int>(value));
  }
  return selector;
}

BlockShape ResolvedProgram::grid_block_shape(
    const ResolvedArray& array, std::span<const int> dim_local) const {
  std::array<int, blas::kMaxRank> extents{};
  for (int d = 0; d < array.rank(); ++d) {
    const std::size_t ud = static_cast<std::size_t>(d);
    const ResolvedIndex& decl =
        indices_[static_cast<std::size_t>(array.index_ids[ud])];
    const int abs_seg = dim_local[ud] + array.seg_lo[ud] - 1;
    extents[ud] = decl.segment_extent(abs_seg);
  }
  return BlockShape({extents.data(), static_cast<std::size_t>(array.rank())});
}

std::vector<long> ResolvedProgram::pardo_dims(
    const PardoInfo& pardo, std::span<const long> index_values) const {
  if (pardo.sub_of >= 0) {
    const ResolvedIndex& sub =
        indices_[static_cast<std::size_t>(pardo.index_ids.front())];
    const long super_value =
        index_values[static_cast<std::size_t>(pardo.sub_of)];
    if (super_value == kUndefinedIndexValue) {
      throw RuntimeError(
          "'pardo " + sub.name +
          " in ...' requires the super index to have a value");
    }
    const long first =
        (super_value - 1) * sub.subs_per_segment + 1;
    const long last = std::min<long>(super_value * sub.subs_per_segment,
                                     sub.seg_hi);
    return {std::max<long>(0, last - first + 1)};
  }
  std::vector<long> dims;
  dims.reserve(pardo.index_ids.size());
  for (const int id : pardo.index_ids) {
    dims.push_back(indices_[static_cast<std::size_t>(id)].num_values());
  }
  return dims;
}

void ResolvedProgram::pardo_decode(const PardoInfo& pardo,
                                   std::span<const long> index_values,
                                   std::int64_t raw,
                                   std::span<long> out_values) const {
  if (pardo.sub_of >= 0) {
    const ResolvedIndex& sub =
        indices_[static_cast<std::size_t>(pardo.index_ids.front())];
    const long super_value =
        index_values[static_cast<std::size_t>(pardo.sub_of)];
    out_values[0] = (super_value - 1) * sub.subs_per_segment + 1 + raw;
    return;
  }
  const std::vector<long> dims = pardo_dims(pardo, index_values);
  for (int d = static_cast<int>(dims.size()) - 1; d >= 0; --d) {
    const std::size_t ud = static_cast<std::size_t>(d);
    const ResolvedIndex& index =
        indices_[static_cast<std::size_t>(pardo.index_ids[ud])];
    out_values[ud] = index.seg_lo + (raw % dims[ud]);
    raw /= dims[ud];
  }
}

std::vector<std::int64_t> ResolvedProgram::pardo_filtered_space(
    const PardoInfo& pardo, std::span<const long> index_values) const {
  const std::vector<long> dims = pardo_dims(pardo, index_values);
  std::int64_t total = 1;
  for (const long d : dims) total *= d;
  if (total > kMaxPardoSpace) {
    throw RuntimeError("pardo iteration space of " + std::to_string(total) +
                       " exceeds the interpreter limit");
  }

  std::vector<std::int64_t> filtered;
  if (total == 0) return filtered;
  filtered.reserve(static_cast<std::size_t>(total));

  std::vector<long> values(index_values.begin(), index_values.end());
  std::vector<long> decoded(pardo.index_ids.size());
  for (std::int64_t raw = 0; raw < total; ++raw) {
    pardo_decode(pardo, index_values, raw, decoded);
    for (std::size_t d = 0; d < pardo.index_ids.size(); ++d) {
      values[static_cast<std::size_t>(pardo.index_ids[d])] = decoded[d];
    }
    bool keep = true;
    for (const WhereOp& where : pardo.wheres) {
      const long lhs =
          values[static_cast<std::size_t>(where.lhs_index_id)];
      long rhs = 0;
      if (where.rhs_is_index) {
        rhs = values[static_cast<std::size_t>(where.rhs_index_id)];
        if (rhs == kUndefinedIndexValue) {
          throw RuntimeError(
              "where clause compares against an index with no value");
        }
      } else {
        rhs = eval_int_expr(where.rhs_const);
      }
      if (eval_cmp(where.op, lhs, rhs) == 0) {
        keep = false;
        break;
      }
    }
    if (keep) filtered.push_back(raw);
  }
  return filtered;
}

}  // namespace sia::sial
