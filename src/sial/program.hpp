// Program initialization: binding bytecode to a runtime configuration.
//
// "Some of the values in the tables are symbolic values that correspond to
// values of predefined constants. The symbolic values are replaced with a
// concrete value during initialization." (paper §V-A). ResolvedProgram is
// the compiled program plus that binding: index element ranges evaluated,
// segment sizes applied per index type, array grids computed, and the
// operand-resolution logic every SIP component shares (interpreter, dry
// run, prefetcher, checkpointing).
//
// Segment numbering: segment numbers are absolute within an index type's
// 1-based element space, so two indices of the same type (e.g. occupied
// `i = 1, nocc` and virtual `a = nocc+1, norb`) address compatible blocks
// of an array declared over the full range. This requires each index's
// low bound to fall on a segment boundary, which initialization enforces.
#pragma once

#include <array>
#include <span>
#include <string>
#include <vector>

#include "blas/permute.hpp"
#include "block/block.hpp"
#include "block/block_id.hpp"
#include "block/index_range.hpp"
#include "common/config.hpp"
#include "sial/bytecode.hpp"

namespace sia::sial {

struct ResolvedIndex {
  std::string name;
  IndexType type = IndexType::kSimple;
  long low = 1, high = 0;  // element bounds (subindex: of the super range)
  int segment_size = 1;    // elements per segment (subindex: sub-segment)
  int seg_lo = 1, seg_hi = 0;  // absolute segment numbers; loop range
  int super_id = -1;           // subindex: resolved super index
  int subs_per_segment = 1;    // subindex: sub-segments per super segment

  int num_values() const { return seg_hi - seg_lo + 1; }
  // First absolute element of absolute segment `s`.
  long segment_start(int s) const {
    return static_cast<long>(s - 1) * segment_size + 1;
  }
  // Elements in absolute segment `s`, clipped to `high`.
  int segment_extent(int s) const {
    const long start = segment_start(s);
    const long end = std::min<long>(start + segment_size - 1, high);
    return static_cast<int>(end - start + 1);
  }
};

struct ResolvedArray {
  std::string name;
  ArrayKind kind = ArrayKind::kTemp;
  bool sparse = false;  // screenable under the runtime sparse threshold
  std::vector<int> index_ids;
  std::vector<int> num_segments;  // per dimension (array grid)
  std::vector<int> seg_lo;        // per dimension: first absolute segment
  long total_blocks = 0;
  std::size_t max_block_elements = 0;  // full (untrimmed) block size
  std::size_t total_elements = 0;

  int rank() const { return static_cast<int>(index_ids.size()); }
};

// Result of evaluating a BlockOperand against current index values: which
// block of which array, plus slice information when a subindex addresses
// a super-typed dimension.
struct BlockSelector {
  int array_id = -1;
  int rank = 0;
  std::array<int, blas::kMaxRank> dim_local{};     // 1-based in array grid
  bool sliced = false;
  std::array<int, blas::kMaxRank> slice_origin{};  // 0-based elem offsets
  std::array<int, blas::kMaxRank> extents{};       // effective extents
  std::array<int, blas::kMaxRank> block_extents{}; // containing block
  std::array<long, blas::kMaxRank> first_element{};// absolute first element
                                                   // of the effective region
  BlockId id() const {
    return BlockId(array_id, {dim_local.data(),
                              static_cast<std::size_t>(rank)});
  }
  BlockShape shape() const {
    return BlockShape({extents.data(), static_cast<std::size_t>(rank)});
  }
  BlockShape block_shape() const {
    return BlockShape({block_extents.data(), static_cast<std::size_t>(rank)});
  }
};

class ResolvedProgram {
 public:
  ResolvedProgram(CompiledProgram program, const SipConfig& config);

  const CompiledProgram& code() const { return program_; }
  const SipConfig& config() const { return config_; }

  const std::vector<ResolvedIndex>& indices() const { return indices_; }
  const std::vector<ResolvedArray>& arrays() const { return arrays_; }
  const ResolvedIndex& index(int id) const {
    return indices_[static_cast<std::size_t>(id)];
  }
  const ResolvedArray& array(int id) const {
    return arrays_[static_cast<std::size_t>(id)];
  }
  double constant_value(int id) const {
    return constant_values_[static_cast<std::size_t>(id)];
  }

  // Evaluates a symbolic integer expression with the bound constants.
  long eval_int_expr(const IntExpr& expr) const;

  // Evaluates a block operand given the current index values (absolute
  // segment numbers; kUndefinedIndexValue when unset). Throws
  // RuntimeError for undefined indices or out-of-grid segments. Wildcard
  // dimensions are rejected here; allocate handles them itself.
  BlockSelector resolve_operand(const BlockOperand& operand,
                                std::span<const long> index_values) const;

  // Shape of the array's block at the given 1-based grid position.
  BlockShape grid_block_shape(const ResolvedArray& array,
                              std::span<const int> dim_local) const;

  // Pardo iteration-space support. Enumerates the raw Cartesian space of
  // the pardo's indices in row-major order (last index fastest), applies
  // the where clauses, and returns the raw linear positions that survive.
  // `index_values` supplies outer loop values (for where clauses that
  // reference enclosing indices, and for the `pardo ii in i` form).
  std::vector<std::int64_t> pardo_filtered_space(
      const PardoInfo& pardo, std::span<const long> index_values) const;

  // Decodes a raw linear position into absolute segment values, in the
  // order of pardo.index_ids.
  void pardo_decode(const PardoInfo& pardo,
                    std::span<const long> index_values, std::int64_t raw,
                    std::span<long> out_values) const;

  // Per-dimension value counts of the pardo's raw space.
  std::vector<long> pardo_dims(const PardoInfo& pardo,
                               std::span<const long> index_values) const;

 private:
  void resolve_indices();
  void resolve_arrays();

  CompiledProgram program_;
  SipConfig config_;
  std::vector<ResolvedIndex> indices_;
  std::vector<ResolvedArray> arrays_;
  std::vector<double> constant_values_;
};

inline constexpr long kUndefinedIndexValue = -1;

}  // namespace sia::sial
