// SIAL -> SIA bytecode compiler.
//
// Lowers a semantically checked AST to a CompiledProgram. The compiler is
// deliberately unsophisticated: "the SIAL compiler itself does not perform
// any sophisticated optimization, [so] the relationship between the source
// code and the profile data is transparent" (paper §VI-B). Each statement
// maps to a short, predictable instruction sequence.
#pragma once

#include <string>

#include "sial/ast.hpp"
#include "sial/bytecode.hpp"

namespace sia::sial {

// Compiles a checked AST. Throws CompileError on the few conditions only
// visible during lowering (e.g. too many names).
CompiledProgram compile(const ProgramAst& program);

// Full front end: lex + parse + sema + compile.
CompiledProgram compile_sial(const std::string& source);

}  // namespace sia::sial
