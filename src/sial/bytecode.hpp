// SIA bytecode.
//
// "A SIAL program is compiled into super instruction byte code which is
// executed by the SIP. The byte code includes a table of instructions to
// be executed along with operand addresses given as entries in data
// descriptor tables." (paper §V-A). CompiledProgram is that artifact: an
// instruction table plus index/array/scalar/pardo/proc descriptor tables.
// Symbolic constants remain symbolic here; they are replaced with concrete
// values during initialization (program.hpp).
#pragma once

#include <array>
#include <string>
#include <vector>

#include "blas/permute.hpp"
#include "sial/ast.hpp"

namespace sia::sial {

enum class Opcode {
  kHalt,
  kNop,

  // Control flow. Jump targets are absolute instruction indices.
  kPardoStart,   // a0 = pardo table id, a1 = pc of matching kPardoEnd
  kPardoEnd,     // a0 = pc of matching kPardoStart, a1 = pardo table id
  kDoStart,      // a0 = index id, a1 = pc of matching kDoEnd,
                 // a2 = super index id for `do ii in i` (else -1)
  kDoEnd,        // a0 = pc of matching kDoStart
  kJump,         // a0 = target pc
  kJumpIfFalse,  // a0 = target pc; pops condition from the scalar stack
  kCall,         // a0 = proc table id
  kReturn,
  kExitLoop,     // a0 = pc of the innermost enclosing kDoEnd

  // Scalar expression stack machine.
  kPushNumber,  // f0
  kPushScalar,  // a0 = scalar slot
  kPushIndex,   // a0 = index id; pushes the current segment value
  kPushConst,   // a0 = constant table id; value bound at initialization
  kNeg, kAdd, kSub, kMul, kDiv,
  kSqrt, kAbs, kExpFn,
  kCompare,      // a0 = CmpOp as int; pops rhs, lhs; pushes 0/1
  kStoreScalar,  // a0 = scalar slot, a1 = AssignStmt::Op as int; pops value
  kBlockDot,     // blocks[0] . blocks[1] full contraction; pushes scalar

  // Output.
  kPrintTop,     // pops and prints the top of the scalar stack
  kPrintString,  // a0 = string table id

  // Block operations (the intrinsic computational super instructions).
  kBlockScalarOp,   // blocks[0] op= scalar; a0 = AssignStmt::Op; pops value
  kBlockCopy,       // blocks[0] = blocks[1]; a0 = Op (=, +=, -=)
  kBlockBinary,     // blocks[0] = blocks[1] <op> blocks[2];
                    // a0 = Op (=, +=), a1 = BinOp (* contraction, + -)
  kBlockScaledCopy, // blocks[0] op= <popped scalar> * blocks[1]; a0 = Op

  // Memory and communication.
  kGet,        // blocks[0]: distributed array block (async fetch)
  kRequest,    // blocks[0]: served array block (async fetch)
  kPut,        // blocks[0] <- blocks[1]; a0 = accumulate (0/1)
  kPrepare,    // blocks[0] <- blocks[1]; a0 = accumulate (0/1)
  kAllocate,   // blocks[0]: local array region (wildcard index id = -1)
  kDeallocate, // blocks[0]
  kCreate,     // a0 = array id (distributed)
  kDeleteArr,  // a0 = array id (distributed)
  kExecute,    // a0 = super instruction table id; uses `eargs`
  kSipBarrier,
  kServerBarrier,
  kCollective,  // a0 = dst scalar slot, a1 = src scalar slot
  kCheckpoint,  // a0 = array id, a1 = string table id (file key)
  kRestoreArr,  // a0 = array id, a1 = string table id

  // Optimizer-generated (src/sial/opt/): non-blocking fetch of blocks[0]
  // hoisted out of a loop whose body proved the block id invariant.
  // a0 = the loop's index id (zero-trip guard: issue only if the loop
  // will run), a1 = super index id for `do ii in i` loops (else -1).
  kPrefetch,
};

const char* opcode_name(Opcode op);

// A block operand: array id plus the index *variable* ids selecting the
// block. Index identity is variable identity — the contraction planner
// matches operand dimensions by index id. A wildcard dimension
// (allocate/deallocate) has index id kWildcardIndex.
inline constexpr int kWildcardIndex = -1;

struct BlockOperand {
  int array_id = -1;
  int rank = 0;
  std::array<int, blas::kMaxRank> index_ids{};

  std::string to_string() const;  // debug form, ids only
};

// Argument of a kExecute instruction.
struct ExecOperand {
  enum class Kind { kBlock, kScalar, kString, kNumber };
  Kind kind = Kind::kScalar;
  BlockOperand block;
  int slot = -1;        // scalar slot / string table id
  double number = 0.0;
};

// One symbolic element of an instruction's static read/write set: the
// block the instruction touches, expressed over index *variables* (the
// same operand form the bytecode itself uses). Computed by the optimizer
// (src/sial/opt/analysis.cpp) at -O1 and above; empty at -O0.
struct StaticAccess {
  BlockOperand operand;
  bool write = false;
  // write-only full overwrite of an unsliced block (assign mode): the
  // destination can be renamed by the dataflow window without reading
  // the previous contents.
  bool full_overwrite = false;
};

struct Instruction {
  Opcode op = Opcode::kNop;
  int line = 0;
  SrcRange range;  // source span of the originating statement
  int a0 = -1, a1 = -1, a2 = -1;
  double f0 = 0.0;
  std::vector<BlockOperand> blocks;
  std::vector<ExecOperand> eargs;

  // Static dataflow annotations (optimizer output; see StaticAccess).
  std::vector<StaticAccess> access;
  // Compile-time proof that the destination is a full unsliced overwrite
  // of a temp block: the window renames it instead of rediscovering the
  // fact at decode time.
  bool renames_dst = false;
};

// ---------------------------------------------------------------------
// Descriptor tables.

struct IndexInfo {
  std::string name;
  IndexType type = IndexType::kSimple;
  IntExpr low, high;   // element bounds (symbolic until init)
  int super_id = -1;   // kSub only
};

struct ArrayInfo {
  std::string name;
  ArrayKind kind = ArrayKind::kTemp;
  bool sparse = false;  // screenable under the runtime sparse threshold
  std::vector<int> index_ids;  // declared index per dimension
  int rank() const { return static_cast<int>(index_ids.size()); }
};

struct ScalarInfo {
  std::string name;
};

struct WhereOp {
  int lhs_index_id = -1;
  CmpOp op = CmpOp::kLt;
  bool rhs_is_index = false;
  int rhs_index_id = -1;
  IntExpr rhs_const;  // when !rhs_is_index (symbolic until init)
};

struct PardoInfo {
  std::vector<int> index_ids;
  std::vector<WhereOp> wheres;
  // `pardo ii in i`: index_ids = {ii}, sub_of = i's id; wheres empty.
  int sub_of = -1;
  int start_pc = -1;
  int end_pc = -1;
  // Optimizer proof (static read/write sets) that the dataflow window
  // may span iteration boundaries: every temp is fully overwritten
  // before it is read each iteration, and the gets/requests in the body
  // touch arrays disjoint from its puts/prepares. The threaded engine
  // then defers the per-iteration drain to an in-order retire entry.
  bool window_safe = false;
};

struct ProcInfo {
  std::string name;
  int entry_pc = -1;
};

struct CompiledProgram {
  std::string name;
  std::vector<IndexInfo> indices;
  std::vector<ArrayInfo> arrays;
  std::vector<ScalarInfo> scalars;
  std::vector<std::string> strings;
  std::vector<std::string> superinstructions;  // names used by kExecute
  std::vector<std::string> constants;          // symbolic constant names
  std::vector<PardoInfo> pardos;
  std::vector<ProcInfo> procs;
  std::vector<Instruction> code;

  // The SIAL text this program was compiled from (diagnostic snippets).
  std::string source;
  // Mid-end bookkeeping: true once static read/write sets were computed
  // (-O1 and above); opt_level_applied records the level that ran; each
  // opt_note tags a pc with what a pass did there ("hoisted", an
  // "eliminated: ..." marker on a kNop, ...) for annotated disassembly.
  bool analyzed = false;
  int opt_level_applied = 0;
  std::vector<std::pair<int, std::string>> opt_notes;

  // Name lookups; -1 if absent.
  int index_id(const std::string& name) const;
  int array_id(const std::string& name) const;
  int scalar_id(const std::string& name) const;
};

}  // namespace sia::sial
