#include "ga/ga.hpp"

#include <algorithm>
#include <condition_variable>
#include <thread>

#include "common/error.hpp"

namespace sia::ga {

GlobalArray::GlobalArray(int ranks, std::span<const long> dims)
    : ranks_(ranks), dims_(dims.begin(), dims.end()) {
  SIA_CHECK(ranks >= 1, "GlobalArray: need at least one rank");
  SIA_CHECK(!dims_.empty(), "GlobalArray: need at least one dimension");
  for (const long d : dims_) {
    SIA_CHECK(d >= 1, "GlobalArray: bad extent");
  }
  for (std::size_t d = 1; d < dims_.size(); ++d) {
    trailing_ *= static_cast<std::size_t>(dims_[d]);
  }

  // Rigid slab distribution along dimension 0 (fixed at creation; this is
  // the "very rigorous organization" of GA-style codes).
  const long rows = dims_[0];
  const long base = rows / ranks;
  const long extra = rows % ranks;
  long next = 0;
  slabs_.reserve(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    auto slab = std::make_unique<Slab>();
    const long count = base + (r < extra ? 1 : 0);
    slab->row_lo = next;
    slab->row_hi = next + count - 1;
    next += count;
    slab->data.assign(static_cast<std::size_t>(count) * trailing_, 0.0);
    slabs_.push_back(std::move(slab));
  }
}

void GlobalArray::distribution(int rank, long* lo, long* hi) const {
  const Slab& slab = *slabs_[static_cast<std::size_t>(rank)];
  *lo = slab.row_lo;
  *hi = slab.row_hi;
}

int GlobalArray::owner_of_row(long row) const {
  for (int r = 0; r < ranks_; ++r) {
    const Slab& slab = *slabs_[static_cast<std::size_t>(r)];
    if (row >= slab.row_lo && row <= slab.row_hi) return r;
  }
  throw Error("GlobalArray: row out of range");
}

template <typename Fn>
void GlobalArray::for_each_slab_section(std::span<const long> lo,
                                        std::span<const long> hi, Fn&& fn) {
  SIA_CHECK(lo.size() == dims_.size() && hi.size() == dims_.size(),
            "GlobalArray: section rank mismatch");
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    if (lo[d] < 0 || hi[d] >= dims_[d] || hi[d] < lo[d]) {
      throw Error("GlobalArray: bad section bounds");
    }
  }
  for (int r = 0; r < ranks_; ++r) {
    Slab& slab = *slabs_[static_cast<std::size_t>(r)];
    const long row_lo = std::max(lo[0], slab.row_lo);
    const long row_hi = std::min(hi[0], slab.row_hi);
    if (row_lo > row_hi) continue;
    fn(r, slab, row_lo, row_hi);
  }
}

namespace {

// Iterates the trailing (non-slab) dimensions of a section, producing the
// flat offset within a row and the packed offset within the user buffer
// row. `dims`/`lo`/`hi` exclude dimension 0.
template <typename Fn>
void for_each_trailing(std::span<const long> dims, std::span<const long> lo,
                       std::span<const long> hi, Fn&& fn) {
  const std::size_t nd = dims.size();
  if (nd == 0) {
    fn(0, 0, 1);
    return;
  }
  // Innermost run is contiguous in both source and destination.
  std::vector<long> counter(lo.begin(), lo.end());
  const long inner_lo = lo[nd - 1];
  const long inner_len = hi[nd - 1] - inner_lo + 1;

  std::size_t packed = 0;
  while (true) {
    // Flat offset of (counter..., inner_lo) within one row.
    std::size_t flat = 0;
    for (std::size_t d = 0; d < nd; ++d) {
      flat = flat * static_cast<std::size_t>(dims[d]) +
             static_cast<std::size_t>(d + 1 == nd ? inner_lo : counter[d]);
    }
    fn(flat, packed, static_cast<std::size_t>(inner_len));
    packed += static_cast<std::size_t>(inner_len);

    // Advance the outer counters (everything but the innermost).
    int d = static_cast<int>(nd) - 2;
    for (; d >= 0; --d) {
      if (++counter[static_cast<std::size_t>(d)] <=
          hi[static_cast<std::size_t>(d)]) {
        break;
      }
      counter[static_cast<std::size_t>(d)] = lo[static_cast<std::size_t>(d)];
    }
    if (d < 0) break;
  }
}

}  // namespace

void GlobalArray::get(int rank, std::span<const long> lo,
                      std::span<const long> hi, double* buf) {
  // Packed row length of the section (product of trailing extents).
  std::size_t section_row = 1;
  for (std::size_t d = 1; d < dims_.size(); ++d) {
    section_row *= static_cast<std::size_t>(hi[d] - lo[d] + 1);
  }
  std::int64_t local = 0, remote = 0;
  for_each_slab_section(lo, hi, [&](int owner, Slab& slab, long row_lo,
                                    long row_hi) {
    std::lock_guard<std::mutex> lock(slab.mutex);
    for (long row = row_lo; row <= row_hi; ++row) {
      const double* src =
          slab.data.data() +
          static_cast<std::size_t>(row - slab.row_lo) * trailing_;
      double* dst = buf + static_cast<std::size_t>(row - lo[0]) * section_row;
      for_each_trailing(
          {dims_.data() + 1, dims_.size() - 1}, lo.subspan(1), hi.subspan(1),
          [&](std::size_t flat, std::size_t packed, std::size_t len) {
            std::copy_n(src + flat, len, dst + packed);
          });
      (owner == rank ? local : remote) +=
          static_cast<std::int64_t>(section_row);
    }
  });
  Slab& my = *slabs_[static_cast<std::size_t>(rank)];
  std::lock_guard<std::mutex> lock(my.mutex);
  my.stats.gets += 1;
  my.stats.local_elements += local;
  my.stats.remote_elements += remote;
}

void GlobalArray::put(int rank, std::span<const long> lo,
                      std::span<const long> hi, const double* buf) {
  std::int64_t local = 0, remote = 0;
  std::size_t section_row = 1;
  for (std::size_t d = 1; d < dims_.size(); ++d) {
    section_row *= static_cast<std::size_t>(hi[d] - lo[d] + 1);
  }
  for_each_slab_section(lo, hi, [&](int owner, Slab& slab, long row_lo,
                                    long row_hi) {
    std::lock_guard<std::mutex> lock(slab.mutex);
    for (long row = row_lo; row <= row_hi; ++row) {
      double* dst = slab.data.data() +
                    static_cast<std::size_t>(row - slab.row_lo) * trailing_;
      const double* src =
          buf + static_cast<std::size_t>(row - lo[0]) * section_row;
      for_each_trailing(
          {dims_.data() + 1, dims_.size() - 1}, lo.subspan(1), hi.subspan(1),
          [&](std::size_t flat, std::size_t packed, std::size_t len) {
            std::copy_n(src + packed, len, dst + flat);
          });
      (owner == rank ? local : remote) +=
          static_cast<std::int64_t>(section_row);
    }
  });
  Slab& my = *slabs_[static_cast<std::size_t>(rank)];
  std::lock_guard<std::mutex> lock(my.mutex);
  my.stats.puts += 1;
  my.stats.local_elements += local;
  my.stats.remote_elements += remote;
}

void GlobalArray::acc(int rank, std::span<const long> lo,
                      std::span<const long> hi, const double* buf,
                      double alpha) {
  std::int64_t local = 0, remote = 0;
  std::size_t section_row = 1;
  for (std::size_t d = 1; d < dims_.size(); ++d) {
    section_row *= static_cast<std::size_t>(hi[d] - lo[d] + 1);
  }
  for_each_slab_section(lo, hi, [&](int owner, Slab& slab, long row_lo,
                                    long row_hi) {
    std::lock_guard<std::mutex> lock(slab.mutex);
    for (long row = row_lo; row <= row_hi; ++row) {
      double* dst = slab.data.data() +
                    static_cast<std::size_t>(row - slab.row_lo) * trailing_;
      const double* src =
          buf + static_cast<std::size_t>(row - lo[0]) * section_row;
      for_each_trailing(
          {dims_.data() + 1, dims_.size() - 1}, lo.subspan(1), hi.subspan(1),
          [&](std::size_t flat, std::size_t packed, std::size_t len) {
            for (std::size_t i = 0; i < len; ++i) {
              dst[flat + i] += alpha * src[packed + i];
            }
          });
      (owner == rank ? local : remote) +=
          static_cast<std::int64_t>(section_row);
    }
  });
  Slab& my = *slabs_[static_cast<std::size_t>(rank)];
  std::lock_guard<std::mutex> lock(my.mutex);
  my.stats.accs += 1;
  my.stats.local_elements += local;
  my.stats.remote_elements += remote;
}

GlobalArray::NbHandle GlobalArray::nbget(int rank, std::span<const long> lo,
                                         std::span<const long> hi,
                                         double* buf) {
  get(rank, lo, hi, buf);
  return NbHandle{true};
}

void GlobalArray::nbwait(NbHandle& handle) { handle.done = true; }

void GlobalArray::fill(double value) {
  for (auto& slab : slabs_) {
    std::lock_guard<std::mutex> lock(slab->mutex);
    std::fill(slab->data.begin(), slab->data.end(), value);
  }
}

std::span<double> GlobalArray::access_local(int rank) {
  Slab& slab = *slabs_[static_cast<std::size_t>(rank)];
  return slab.data;
}

GaStats GlobalArray::stats(int rank) const {
  const Slab& slab = *slabs_[static_cast<std::size_t>(rank)];
  std::lock_guard<std::mutex> lock(slab.mutex);
  return slab.stats;
}

std::size_t GlobalArray::local_bytes(int rank) const {
  return slabs_[static_cast<std::size_t>(rank)]->data.size() *
         sizeof(double);
}

void GaTeam::parallel(const std::function<void(int)>& fn) {
  std::vector<std::thread> threads;
  std::mutex error_mutex;
  std::string first_error;
  threads.reserve(static_cast<std::size_t>(ranks_));
  for (int r = 0; r < ranks_; ++r) {
    threads.emplace_back([&, r] {
      try {
        fn(r);
      } catch (const std::exception& error) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (first_error.empty()) first_error = error.what();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  if (!first_error.empty()) throw Error("GA team failed: " + first_error);
}

void GaTeam::sync() {
  std::unique_lock<std::mutex> lock(mutex_);
  const int generation = generation_;
  if (++waiting_ == ranks_) {
    waiting_ = 0;
    ++generation_;
    cv_.notify_all();
  } else {
    cv_.wait(lock, [&] { return generation_ != generation; });
  }
}

}  // namespace sia::ga
