// A Global-Arrays-style baseline library.
//
// The paper compares ACES III against NWChem, whose data architecture is
// the Global Array toolkit: "an abstraction of global, shared,
// multidimensional arrays [where] programmers use put and get routines to
// copy arbitrary rectangular sections of arrays between the shared array
// and local memory" (§VII). This module reproduces that programming model
// so the comparison benchmarks have a real comparator:
//   * arrays are partitioned in rigid contiguous slabs along the first
//     dimension ("requires a very rigorous organization of the data
//     blocks", §VI-C) fixed at creation time;
//   * get/put/acc move arbitrary rectangular sections; the blocking
//     variants stall the caller, the nb variants return a handle the
//     caller must wait on — overlap is the *programmer's* job, which is
//     precisely the contrast the paper draws with SIAL;
//   * access to remote slabs is one-sided (models ARMCI RMA).
//
// Differences from SIA worth noting in benchmarks: no runtime-managed
// prefetch, no block cache, element-indexed programming.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

namespace sia::ga {

struct GaStats {
  std::int64_t gets = 0;
  std::int64_t puts = 0;
  std::int64_t accs = 0;
  std::int64_t remote_elements = 0;  // elements moved to/from remote slabs
  std::int64_t local_elements = 0;
};

class GlobalArray {
 public:
  // Collective creation: every rank constructs with identical arguments.
  // The array is partitioned into `ranks` contiguous slabs along
  // dimension 0.
  GlobalArray(int ranks, std::span<const long> dims);

  int rank_count() const { return ranks_; }
  int ndim() const { return static_cast<int>(dims_.size()); }
  long dim(int d) const { return dims_[static_cast<std::size_t>(d)]; }

  // Slab of rows [lo, hi] (inclusive, 0-based) owned by `rank`; hi < lo
  // for ranks beyond the distribution.
  void distribution(int rank, long* lo, long* hi) const;
  int owner_of_row(long row) const;

  // Copies the rectangular section [lo, hi] (inclusive, 0-based) into
  // `buf` (row-major, packed). Blocking.
  void get(int rank, std::span<const long> lo, std::span<const long> hi,
           double* buf);
  void put(int rank, std::span<const long> lo, std::span<const long> hi,
           const double* buf);
  // Atomic accumulate: section += alpha * buf.
  void acc(int rank, std::span<const long> lo, std::span<const long> hi,
           const double* buf, double alpha);

  // Non-blocking variants (model nga_nbget / nga_nbwait): the transfer is
  // performed eagerly, the handle exists so calling code exercises the
  // same call structure as real GA.
  struct NbHandle {
    bool done = false;
  };
  NbHandle nbget(int rank, std::span<const long> lo,
                 std::span<const long> hi, double* buf);
  void nbwait(NbHandle& handle);

  // Fills every element (collective convenience; call from one rank).
  void fill(double value);

  // Direct access to this rank's slab (GA's "access local" idiom).
  std::span<double> access_local(int rank);

  GaStats stats(int rank) const;

  // Bytes resident on `rank` for this array.
  std::size_t local_bytes(int rank) const;

 private:
  struct Slab {
    long row_lo = 0, row_hi = -1;
    std::vector<double> data;  // (rows x trailing) row-major
    mutable std::mutex mutex;
    GaStats stats;
  };

  std::size_t trailing_elements() const { return trailing_; }
  // Visits the intersection of [lo,hi] with each owning slab.
  template <typename Fn>
  void for_each_slab_section(std::span<const long> lo,
                             std::span<const long> hi, Fn&& fn);

  int ranks_;
  std::vector<long> dims_;
  std::size_t trailing_ = 1;  // product of dims[1..]
  std::vector<std::unique_ptr<Slab>> slabs_;
};

// Rank team: runs `fn(rank)` on `ranks` threads with a shared barrier,
// standing in for the GA process group.
class GaTeam {
 public:
  explicit GaTeam(int ranks) : ranks_(ranks) {}
  int ranks() const { return ranks_; }

  // Executes fn on every rank concurrently; rethrows the first exception.
  void parallel(const std::function<void(int)>& fn);

  // Barrier usable from inside `fn` (GA_Sync).
  void sync();

 private:
  int ranks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  int waiting_ = 0;
  int generation_ = 0;
};

}  // namespace sia::ga
