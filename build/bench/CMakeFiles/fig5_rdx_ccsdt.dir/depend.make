# Empty dependencies file for fig5_rdx_ccsdt.
# This may be replaced when dependencies are built.
