file(REMOVE_RECURSE
  "CMakeFiles/fig5_rdx_ccsdt.dir/fig5_rdx_ccsdt.cpp.o"
  "CMakeFiles/fig5_rdx_ccsdt.dir/fig5_rdx_ccsdt.cpp.o.d"
  "fig5_rdx_ccsdt"
  "fig5_rdx_ccsdt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_rdx_ccsdt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
