# Empty dependencies file for fig6_fock_build.
# This may be replaced when dependencies are built.
