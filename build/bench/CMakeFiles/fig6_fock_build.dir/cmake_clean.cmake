file(REMOVE_RECURSE
  "CMakeFiles/fig6_fock_build.dir/fig6_fock_build.cpp.o"
  "CMakeFiles/fig6_fock_build.dir/fig6_fock_build.cpp.o.d"
  "fig6_fock_build"
  "fig6_fock_build.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_fock_build.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
