# Empty dependencies file for fig2_luciferin_ccsd.
# This may be replaced when dependencies are built.
