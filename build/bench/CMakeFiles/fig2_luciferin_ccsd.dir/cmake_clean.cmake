file(REMOVE_RECURSE
  "CMakeFiles/fig2_luciferin_ccsd.dir/fig2_luciferin_ccsd.cpp.o"
  "CMakeFiles/fig2_luciferin_ccsd.dir/fig2_luciferin_ccsd.cpp.o.d"
  "fig2_luciferin_ccsd"
  "fig2_luciferin_ccsd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_luciferin_ccsd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
