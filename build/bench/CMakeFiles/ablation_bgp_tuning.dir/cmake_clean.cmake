file(REMOVE_RECURSE
  "CMakeFiles/ablation_bgp_tuning.dir/ablation_bgp_tuning.cpp.o"
  "CMakeFiles/ablation_bgp_tuning.dir/ablation_bgp_tuning.cpp.o.d"
  "ablation_bgp_tuning"
  "ablation_bgp_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bgp_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
