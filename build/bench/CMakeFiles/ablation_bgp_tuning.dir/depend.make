# Empty dependencies file for ablation_bgp_tuning.
# This may be replaced when dependencies are built.
