# Empty compiler generated dependencies file for fig3_water_ccsd.
# This may be replaced when dependencies are built.
