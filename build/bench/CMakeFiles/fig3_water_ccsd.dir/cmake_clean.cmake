file(REMOVE_RECURSE
  "CMakeFiles/fig3_water_ccsd.dir/fig3_water_ccsd.cpp.o"
  "CMakeFiles/fig3_water_ccsd.dir/fig3_water_ccsd.cpp.o.d"
  "fig3_water_ccsd"
  "fig3_water_ccsd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_water_ccsd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
