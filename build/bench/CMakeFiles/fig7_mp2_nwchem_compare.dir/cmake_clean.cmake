file(REMOVE_RECURSE
  "CMakeFiles/fig7_mp2_nwchem_compare.dir/fig7_mp2_nwchem_compare.cpp.o"
  "CMakeFiles/fig7_mp2_nwchem_compare.dir/fig7_mp2_nwchem_compare.cpp.o.d"
  "fig7_mp2_nwchem_compare"
  "fig7_mp2_nwchem_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_mp2_nwchem_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
