# Empty compiler generated dependencies file for fig7_mp2_nwchem_compare.
# This may be replaced when dependencies are built.
