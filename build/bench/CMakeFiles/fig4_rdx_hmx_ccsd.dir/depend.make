# Empty dependencies file for fig4_rdx_hmx_ccsd.
# This may be replaced when dependencies are built.
