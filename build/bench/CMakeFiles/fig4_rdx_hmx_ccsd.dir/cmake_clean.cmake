file(REMOVE_RECURSE
  "CMakeFiles/fig4_rdx_hmx_ccsd.dir/fig4_rdx_hmx_ccsd.cpp.o"
  "CMakeFiles/fig4_rdx_hmx_ccsd.dir/fig4_rdx_hmx_ccsd.cpp.o.d"
  "fig4_rdx_hmx_ccsd"
  "fig4_rdx_hmx_ccsd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_rdx_hmx_ccsd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
