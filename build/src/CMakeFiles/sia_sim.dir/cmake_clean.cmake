file(REMOVE_RECURSE
  "CMakeFiles/sia_sim.dir/sim/des.cpp.o"
  "CMakeFiles/sia_sim.dir/sim/des.cpp.o.d"
  "CMakeFiles/sia_sim.dir/sim/ga_model.cpp.o"
  "CMakeFiles/sia_sim.dir/sim/ga_model.cpp.o.d"
  "CMakeFiles/sia_sim.dir/sim/machine.cpp.o"
  "CMakeFiles/sia_sim.dir/sim/machine.cpp.o.d"
  "CMakeFiles/sia_sim.dir/sim/program_model.cpp.o"
  "CMakeFiles/sia_sim.dir/sim/program_model.cpp.o.d"
  "CMakeFiles/sia_sim.dir/sim/report.cpp.o"
  "CMakeFiles/sia_sim.dir/sim/report.cpp.o.d"
  "CMakeFiles/sia_sim.dir/sim/sip_model.cpp.o"
  "CMakeFiles/sia_sim.dir/sim/sip_model.cpp.o.d"
  "CMakeFiles/sia_sim.dir/sim/workload.cpp.o"
  "CMakeFiles/sia_sim.dir/sim/workload.cpp.o.d"
  "libsia_sim.a"
  "libsia_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sia_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
