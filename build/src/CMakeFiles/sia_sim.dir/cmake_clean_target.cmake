file(REMOVE_RECURSE
  "libsia_sim.a"
)
