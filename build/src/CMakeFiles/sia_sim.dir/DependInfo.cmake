
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/des.cpp" "src/CMakeFiles/sia_sim.dir/sim/des.cpp.o" "gcc" "src/CMakeFiles/sia_sim.dir/sim/des.cpp.o.d"
  "/root/repo/src/sim/ga_model.cpp" "src/CMakeFiles/sia_sim.dir/sim/ga_model.cpp.o" "gcc" "src/CMakeFiles/sia_sim.dir/sim/ga_model.cpp.o.d"
  "/root/repo/src/sim/machine.cpp" "src/CMakeFiles/sia_sim.dir/sim/machine.cpp.o" "gcc" "src/CMakeFiles/sia_sim.dir/sim/machine.cpp.o.d"
  "/root/repo/src/sim/program_model.cpp" "src/CMakeFiles/sia_sim.dir/sim/program_model.cpp.o" "gcc" "src/CMakeFiles/sia_sim.dir/sim/program_model.cpp.o.d"
  "/root/repo/src/sim/report.cpp" "src/CMakeFiles/sia_sim.dir/sim/report.cpp.o" "gcc" "src/CMakeFiles/sia_sim.dir/sim/report.cpp.o.d"
  "/root/repo/src/sim/sip_model.cpp" "src/CMakeFiles/sia_sim.dir/sim/sip_model.cpp.o" "gcc" "src/CMakeFiles/sia_sim.dir/sim/sip_model.cpp.o.d"
  "/root/repo/src/sim/workload.cpp" "src/CMakeFiles/sia_sim.dir/sim/workload.cpp.o" "gcc" "src/CMakeFiles/sia_sim.dir/sim/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sia_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sia_sip.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sia_chem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sia_sial.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sia_msg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sia_block.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sia_blas.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
