# Empty dependencies file for sia_ga.
# This may be replaced when dependencies are built.
