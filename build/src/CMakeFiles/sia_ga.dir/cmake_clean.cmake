file(REMOVE_RECURSE
  "CMakeFiles/sia_ga.dir/ga/ga.cpp.o"
  "CMakeFiles/sia_ga.dir/ga/ga.cpp.o.d"
  "libsia_ga.a"
  "libsia_ga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sia_ga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
