file(REMOVE_RECURSE
  "libsia_ga.a"
)
