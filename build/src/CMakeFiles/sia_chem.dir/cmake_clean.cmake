file(REMOVE_RECURSE
  "CMakeFiles/sia_chem.dir/chem/integrals.cpp.o"
  "CMakeFiles/sia_chem.dir/chem/integrals.cpp.o.d"
  "CMakeFiles/sia_chem.dir/chem/programs.cpp.o"
  "CMakeFiles/sia_chem.dir/chem/programs.cpp.o.d"
  "CMakeFiles/sia_chem.dir/chem/reference.cpp.o"
  "CMakeFiles/sia_chem.dir/chem/reference.cpp.o.d"
  "CMakeFiles/sia_chem.dir/chem/system.cpp.o"
  "CMakeFiles/sia_chem.dir/chem/system.cpp.o.d"
  "libsia_chem.a"
  "libsia_chem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sia_chem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
