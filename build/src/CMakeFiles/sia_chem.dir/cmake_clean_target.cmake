file(REMOVE_RECURSE
  "libsia_chem.a"
)
