# Empty compiler generated dependencies file for sia_chem.
# This may be replaced when dependencies are built.
