file(REMOVE_RECURSE
  "CMakeFiles/sia_common.dir/common/config.cpp.o"
  "CMakeFiles/sia_common.dir/common/config.cpp.o.d"
  "CMakeFiles/sia_common.dir/common/log.cpp.o"
  "CMakeFiles/sia_common.dir/common/log.cpp.o.d"
  "CMakeFiles/sia_common.dir/common/stats.cpp.o"
  "CMakeFiles/sia_common.dir/common/stats.cpp.o.d"
  "libsia_common.a"
  "libsia_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sia_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
