file(REMOVE_RECURSE
  "CMakeFiles/sia_sial.dir/sial/bytecode.cpp.o"
  "CMakeFiles/sia_sial.dir/sial/bytecode.cpp.o.d"
  "CMakeFiles/sia_sial.dir/sial/compiler.cpp.o"
  "CMakeFiles/sia_sial.dir/sial/compiler.cpp.o.d"
  "CMakeFiles/sia_sial.dir/sial/disasm.cpp.o"
  "CMakeFiles/sia_sial.dir/sial/disasm.cpp.o.d"
  "CMakeFiles/sia_sial.dir/sial/lexer.cpp.o"
  "CMakeFiles/sia_sial.dir/sial/lexer.cpp.o.d"
  "CMakeFiles/sia_sial.dir/sial/parser.cpp.o"
  "CMakeFiles/sia_sial.dir/sial/parser.cpp.o.d"
  "CMakeFiles/sia_sial.dir/sial/program.cpp.o"
  "CMakeFiles/sia_sial.dir/sial/program.cpp.o.d"
  "CMakeFiles/sia_sial.dir/sial/sema.cpp.o"
  "CMakeFiles/sia_sial.dir/sial/sema.cpp.o.d"
  "libsia_sial.a"
  "libsia_sial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sia_sial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
