file(REMOVE_RECURSE
  "libsia_sial.a"
)
