# Empty dependencies file for sia_sial.
# This may be replaced when dependencies are built.
