
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sial/bytecode.cpp" "src/CMakeFiles/sia_sial.dir/sial/bytecode.cpp.o" "gcc" "src/CMakeFiles/sia_sial.dir/sial/bytecode.cpp.o.d"
  "/root/repo/src/sial/compiler.cpp" "src/CMakeFiles/sia_sial.dir/sial/compiler.cpp.o" "gcc" "src/CMakeFiles/sia_sial.dir/sial/compiler.cpp.o.d"
  "/root/repo/src/sial/disasm.cpp" "src/CMakeFiles/sia_sial.dir/sial/disasm.cpp.o" "gcc" "src/CMakeFiles/sia_sial.dir/sial/disasm.cpp.o.d"
  "/root/repo/src/sial/lexer.cpp" "src/CMakeFiles/sia_sial.dir/sial/lexer.cpp.o" "gcc" "src/CMakeFiles/sia_sial.dir/sial/lexer.cpp.o.d"
  "/root/repo/src/sial/parser.cpp" "src/CMakeFiles/sia_sial.dir/sial/parser.cpp.o" "gcc" "src/CMakeFiles/sia_sial.dir/sial/parser.cpp.o.d"
  "/root/repo/src/sial/program.cpp" "src/CMakeFiles/sia_sial.dir/sial/program.cpp.o" "gcc" "src/CMakeFiles/sia_sial.dir/sial/program.cpp.o.d"
  "/root/repo/src/sial/sema.cpp" "src/CMakeFiles/sia_sial.dir/sial/sema.cpp.o" "gcc" "src/CMakeFiles/sia_sial.dir/sial/sema.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sia_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sia_block.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sia_blas.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
