file(REMOVE_RECURSE
  "libsia_blas.a"
)
