
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/blas/contraction_plan.cpp" "src/CMakeFiles/sia_blas.dir/blas/contraction_plan.cpp.o" "gcc" "src/CMakeFiles/sia_blas.dir/blas/contraction_plan.cpp.o.d"
  "/root/repo/src/blas/elementwise.cpp" "src/CMakeFiles/sia_blas.dir/blas/elementwise.cpp.o" "gcc" "src/CMakeFiles/sia_blas.dir/blas/elementwise.cpp.o.d"
  "/root/repo/src/blas/gemm.cpp" "src/CMakeFiles/sia_blas.dir/blas/gemm.cpp.o" "gcc" "src/CMakeFiles/sia_blas.dir/blas/gemm.cpp.o.d"
  "/root/repo/src/blas/permute.cpp" "src/CMakeFiles/sia_blas.dir/blas/permute.cpp.o" "gcc" "src/CMakeFiles/sia_blas.dir/blas/permute.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sia_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
