# Empty compiler generated dependencies file for sia_blas.
# This may be replaced when dependencies are built.
