file(REMOVE_RECURSE
  "CMakeFiles/sia_blas.dir/blas/contraction_plan.cpp.o"
  "CMakeFiles/sia_blas.dir/blas/contraction_plan.cpp.o.d"
  "CMakeFiles/sia_blas.dir/blas/elementwise.cpp.o"
  "CMakeFiles/sia_blas.dir/blas/elementwise.cpp.o.d"
  "CMakeFiles/sia_blas.dir/blas/gemm.cpp.o"
  "CMakeFiles/sia_blas.dir/blas/gemm.cpp.o.d"
  "CMakeFiles/sia_blas.dir/blas/permute.cpp.o"
  "CMakeFiles/sia_blas.dir/blas/permute.cpp.o.d"
  "libsia_blas.a"
  "libsia_blas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sia_blas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
