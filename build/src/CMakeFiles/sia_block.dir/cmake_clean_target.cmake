file(REMOVE_RECURSE
  "libsia_block.a"
)
