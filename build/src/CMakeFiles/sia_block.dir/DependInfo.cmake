
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/block/block.cpp" "src/CMakeFiles/sia_block.dir/block/block.cpp.o" "gcc" "src/CMakeFiles/sia_block.dir/block/block.cpp.o.d"
  "/root/repo/src/block/block_cache.cpp" "src/CMakeFiles/sia_block.dir/block/block_cache.cpp.o" "gcc" "src/CMakeFiles/sia_block.dir/block/block_cache.cpp.o.d"
  "/root/repo/src/block/block_id.cpp" "src/CMakeFiles/sia_block.dir/block/block_id.cpp.o" "gcc" "src/CMakeFiles/sia_block.dir/block/block_id.cpp.o.d"
  "/root/repo/src/block/block_pool.cpp" "src/CMakeFiles/sia_block.dir/block/block_pool.cpp.o" "gcc" "src/CMakeFiles/sia_block.dir/block/block_pool.cpp.o.d"
  "/root/repo/src/block/index_range.cpp" "src/CMakeFiles/sia_block.dir/block/index_range.cpp.o" "gcc" "src/CMakeFiles/sia_block.dir/block/index_range.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sia_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sia_blas.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
