file(REMOVE_RECURSE
  "CMakeFiles/sia_block.dir/block/block.cpp.o"
  "CMakeFiles/sia_block.dir/block/block.cpp.o.d"
  "CMakeFiles/sia_block.dir/block/block_cache.cpp.o"
  "CMakeFiles/sia_block.dir/block/block_cache.cpp.o.d"
  "CMakeFiles/sia_block.dir/block/block_id.cpp.o"
  "CMakeFiles/sia_block.dir/block/block_id.cpp.o.d"
  "CMakeFiles/sia_block.dir/block/block_pool.cpp.o"
  "CMakeFiles/sia_block.dir/block/block_pool.cpp.o.d"
  "CMakeFiles/sia_block.dir/block/index_range.cpp.o"
  "CMakeFiles/sia_block.dir/block/index_range.cpp.o.d"
  "libsia_block.a"
  "libsia_block.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sia_block.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
