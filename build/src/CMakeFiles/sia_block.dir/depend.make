# Empty dependencies file for sia_block.
# This may be replaced when dependencies are built.
