file(REMOVE_RECURSE
  "libsia_msg.a"
)
