# Empty compiler generated dependencies file for sia_msg.
# This may be replaced when dependencies are built.
