file(REMOVE_RECURSE
  "CMakeFiles/sia_msg.dir/msg/fabric.cpp.o"
  "CMakeFiles/sia_msg.dir/msg/fabric.cpp.o.d"
  "libsia_msg.a"
  "libsia_msg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sia_msg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
