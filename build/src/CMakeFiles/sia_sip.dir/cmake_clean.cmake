file(REMOVE_RECURSE
  "CMakeFiles/sia_sip.dir/sip/checkpoint.cpp.o"
  "CMakeFiles/sia_sip.dir/sip/checkpoint.cpp.o.d"
  "CMakeFiles/sia_sip.dir/sip/data_manager.cpp.o"
  "CMakeFiles/sia_sip.dir/sip/data_manager.cpp.o.d"
  "CMakeFiles/sia_sip.dir/sip/dist_array.cpp.o"
  "CMakeFiles/sia_sip.dir/sip/dist_array.cpp.o.d"
  "CMakeFiles/sia_sip.dir/sip/interpreter.cpp.o"
  "CMakeFiles/sia_sip.dir/sip/interpreter.cpp.o.d"
  "CMakeFiles/sia_sip.dir/sip/io_server.cpp.o"
  "CMakeFiles/sia_sip.dir/sip/io_server.cpp.o.d"
  "CMakeFiles/sia_sip.dir/sip/launch.cpp.o"
  "CMakeFiles/sia_sip.dir/sip/launch.cpp.o.d"
  "CMakeFiles/sia_sip.dir/sip/master.cpp.o"
  "CMakeFiles/sia_sip.dir/sip/master.cpp.o.d"
  "CMakeFiles/sia_sip.dir/sip/prefetch.cpp.o"
  "CMakeFiles/sia_sip.dir/sip/prefetch.cpp.o.d"
  "CMakeFiles/sia_sip.dir/sip/profiler.cpp.o"
  "CMakeFiles/sia_sip.dir/sip/profiler.cpp.o.d"
  "CMakeFiles/sia_sip.dir/sip/scheduler.cpp.o"
  "CMakeFiles/sia_sip.dir/sip/scheduler.cpp.o.d"
  "CMakeFiles/sia_sip.dir/sip/served_array.cpp.o"
  "CMakeFiles/sia_sip.dir/sip/served_array.cpp.o.d"
  "CMakeFiles/sia_sip.dir/sip/superinstr.cpp.o"
  "CMakeFiles/sia_sip.dir/sip/superinstr.cpp.o.d"
  "libsia_sip.a"
  "libsia_sip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sia_sip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
