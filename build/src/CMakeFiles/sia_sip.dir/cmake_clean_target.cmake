file(REMOVE_RECURSE
  "libsia_sip.a"
)
