
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sip/checkpoint.cpp" "src/CMakeFiles/sia_sip.dir/sip/checkpoint.cpp.o" "gcc" "src/CMakeFiles/sia_sip.dir/sip/checkpoint.cpp.o.d"
  "/root/repo/src/sip/data_manager.cpp" "src/CMakeFiles/sia_sip.dir/sip/data_manager.cpp.o" "gcc" "src/CMakeFiles/sia_sip.dir/sip/data_manager.cpp.o.d"
  "/root/repo/src/sip/dist_array.cpp" "src/CMakeFiles/sia_sip.dir/sip/dist_array.cpp.o" "gcc" "src/CMakeFiles/sia_sip.dir/sip/dist_array.cpp.o.d"
  "/root/repo/src/sip/interpreter.cpp" "src/CMakeFiles/sia_sip.dir/sip/interpreter.cpp.o" "gcc" "src/CMakeFiles/sia_sip.dir/sip/interpreter.cpp.o.d"
  "/root/repo/src/sip/io_server.cpp" "src/CMakeFiles/sia_sip.dir/sip/io_server.cpp.o" "gcc" "src/CMakeFiles/sia_sip.dir/sip/io_server.cpp.o.d"
  "/root/repo/src/sip/launch.cpp" "src/CMakeFiles/sia_sip.dir/sip/launch.cpp.o" "gcc" "src/CMakeFiles/sia_sip.dir/sip/launch.cpp.o.d"
  "/root/repo/src/sip/master.cpp" "src/CMakeFiles/sia_sip.dir/sip/master.cpp.o" "gcc" "src/CMakeFiles/sia_sip.dir/sip/master.cpp.o.d"
  "/root/repo/src/sip/prefetch.cpp" "src/CMakeFiles/sia_sip.dir/sip/prefetch.cpp.o" "gcc" "src/CMakeFiles/sia_sip.dir/sip/prefetch.cpp.o.d"
  "/root/repo/src/sip/profiler.cpp" "src/CMakeFiles/sia_sip.dir/sip/profiler.cpp.o" "gcc" "src/CMakeFiles/sia_sip.dir/sip/profiler.cpp.o.d"
  "/root/repo/src/sip/scheduler.cpp" "src/CMakeFiles/sia_sip.dir/sip/scheduler.cpp.o" "gcc" "src/CMakeFiles/sia_sip.dir/sip/scheduler.cpp.o.d"
  "/root/repo/src/sip/served_array.cpp" "src/CMakeFiles/sia_sip.dir/sip/served_array.cpp.o" "gcc" "src/CMakeFiles/sia_sip.dir/sip/served_array.cpp.o.d"
  "/root/repo/src/sip/superinstr.cpp" "src/CMakeFiles/sia_sip.dir/sip/superinstr.cpp.o" "gcc" "src/CMakeFiles/sia_sip.dir/sip/superinstr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sia_sial.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sia_msg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sia_block.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sia_blas.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sia_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
