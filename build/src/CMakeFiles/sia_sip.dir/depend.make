# Empty dependencies file for sia_sip.
# This may be replaced when dependencies are built.
