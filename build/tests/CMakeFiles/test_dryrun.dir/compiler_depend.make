# Empty compiler generated dependencies file for test_dryrun.
# This may be replaced when dependencies are built.
