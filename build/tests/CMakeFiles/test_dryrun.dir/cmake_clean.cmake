file(REMOVE_RECURSE
  "CMakeFiles/test_dryrun.dir/test_dryrun.cpp.o"
  "CMakeFiles/test_dryrun.dir/test_dryrun.cpp.o.d"
  "test_dryrun"
  "test_dryrun.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dryrun.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
