file(REMOVE_RECURSE
  "CMakeFiles/test_sip_basic.dir/test_sip_basic.cpp.o"
  "CMakeFiles/test_sip_basic.dir/test_sip_basic.cpp.o.d"
  "test_sip_basic"
  "test_sip_basic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sip_basic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
