# Empty compiler generated dependencies file for test_sip_basic.
# This may be replaced when dependencies are built.
