file(REMOVE_RECURSE
  "CMakeFiles/test_sip_errors.dir/test_sip_errors.cpp.o"
  "CMakeFiles/test_sip_errors.dir/test_sip_errors.cpp.o.d"
  "test_sip_errors"
  "test_sip_errors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sip_errors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
