# Empty compiler generated dependencies file for test_sip_errors.
# This may be replaced when dependencies are built.
