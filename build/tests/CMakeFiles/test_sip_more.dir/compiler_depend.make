# Empty compiler generated dependencies file for test_sip_more.
# This may be replaced when dependencies are built.
