file(REMOVE_RECURSE
  "CMakeFiles/test_sip_more.dir/test_sip_more.cpp.o"
  "CMakeFiles/test_sip_more.dir/test_sip_more.cpp.o.d"
  "test_sip_more"
  "test_sip_more.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sip_more.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
