file(REMOVE_RECURSE
  "CMakeFiles/test_sial_files.dir/test_sial_files.cpp.o"
  "CMakeFiles/test_sial_files.dir/test_sial_files.cpp.o.d"
  "test_sial_files"
  "test_sial_files.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sial_files.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
