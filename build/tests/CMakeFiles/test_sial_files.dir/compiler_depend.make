# Empty compiler generated dependencies file for test_sial_files.
# This may be replaced when dependencies are built.
