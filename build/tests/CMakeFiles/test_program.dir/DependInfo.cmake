
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_program.cpp" "tests/CMakeFiles/test_program.dir/test_program.cpp.o" "gcc" "tests/CMakeFiles/test_program.dir/test_program.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sia_ga.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sia_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sia_chem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sia_sip.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sia_msg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sia_sial.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sia_block.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sia_blas.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sia_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
