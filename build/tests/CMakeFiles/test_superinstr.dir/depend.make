# Empty dependencies file for test_superinstr.
# This may be replaced when dependencies are built.
