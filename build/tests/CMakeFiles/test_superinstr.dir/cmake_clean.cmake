file(REMOVE_RECURSE
  "CMakeFiles/test_superinstr.dir/test_superinstr.cpp.o"
  "CMakeFiles/test_superinstr.dir/test_superinstr.cpp.o.d"
  "test_superinstr"
  "test_superinstr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_superinstr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
