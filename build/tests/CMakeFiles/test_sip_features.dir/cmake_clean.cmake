file(REMOVE_RECURSE
  "CMakeFiles/test_sip_features.dir/test_sip_features.cpp.o"
  "CMakeFiles/test_sip_features.dir/test_sip_features.cpp.o.d"
  "test_sip_features"
  "test_sip_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sip_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
