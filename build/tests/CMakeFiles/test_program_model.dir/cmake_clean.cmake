file(REMOVE_RECURSE
  "CMakeFiles/test_program_model.dir/test_program_model.cpp.o"
  "CMakeFiles/test_program_model.dir/test_program_model.cpp.o.d"
  "test_program_model"
  "test_program_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_program_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
