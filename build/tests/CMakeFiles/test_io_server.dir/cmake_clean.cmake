file(REMOVE_RECURSE
  "CMakeFiles/test_io_server.dir/test_io_server.cpp.o"
  "CMakeFiles/test_io_server.dir/test_io_server.cpp.o.d"
  "test_io_server"
  "test_io_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_io_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
