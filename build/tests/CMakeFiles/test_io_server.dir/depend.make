# Empty dependencies file for test_io_server.
# This may be replaced when dependencies are built.
