# Empty compiler generated dependencies file for test_sip_dist.
# This may be replaced when dependencies are built.
