file(REMOVE_RECURSE
  "CMakeFiles/test_sip_dist.dir/test_sip_dist.cpp.o"
  "CMakeFiles/test_sip_dist.dir/test_sip_dist.cpp.o.d"
  "test_sip_dist"
  "test_sip_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sip_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
