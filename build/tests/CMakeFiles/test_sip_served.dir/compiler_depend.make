# Empty compiler generated dependencies file for test_sip_served.
# This may be replaced when dependencies are built.
