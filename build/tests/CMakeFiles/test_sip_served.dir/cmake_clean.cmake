file(REMOVE_RECURSE
  "CMakeFiles/test_sip_served.dir/test_sip_served.cpp.o"
  "CMakeFiles/test_sip_served.dir/test_sip_served.cpp.o.d"
  "test_sip_served"
  "test_sip_served.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sip_served.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
