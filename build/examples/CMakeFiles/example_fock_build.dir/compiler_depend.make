# Empty compiler generated dependencies file for example_fock_build.
# This may be replaced when dependencies are built.
