file(REMOVE_RECURSE
  "CMakeFiles/example_fock_build.dir/fock_build.cpp.o"
  "CMakeFiles/example_fock_build.dir/fock_build.cpp.o.d"
  "example_fock_build"
  "example_fock_build.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_fock_build.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
