# Empty compiler generated dependencies file for example_ga_vs_sial.
# This may be replaced when dependencies are built.
