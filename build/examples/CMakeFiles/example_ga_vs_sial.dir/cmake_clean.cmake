file(REMOVE_RECURSE
  "CMakeFiles/example_ga_vs_sial.dir/ga_vs_sial.cpp.o"
  "CMakeFiles/example_ga_vs_sial.dir/ga_vs_sial.cpp.o.d"
  "example_ga_vs_sial"
  "example_ga_vs_sial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_ga_vs_sial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
