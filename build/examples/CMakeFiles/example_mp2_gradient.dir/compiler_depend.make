# Empty compiler generated dependencies file for example_mp2_gradient.
# This may be replaced when dependencies are built.
