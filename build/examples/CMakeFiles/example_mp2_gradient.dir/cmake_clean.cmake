file(REMOVE_RECURSE
  "CMakeFiles/example_mp2_gradient.dir/mp2_gradient.cpp.o"
  "CMakeFiles/example_mp2_gradient.dir/mp2_gradient.cpp.o.d"
  "example_mp2_gradient"
  "example_mp2_gradient.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_mp2_gradient.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
