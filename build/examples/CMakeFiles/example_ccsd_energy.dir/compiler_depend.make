# Empty compiler generated dependencies file for example_ccsd_energy.
# This may be replaced when dependencies are built.
