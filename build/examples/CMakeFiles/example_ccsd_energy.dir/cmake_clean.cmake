file(REMOVE_RECURSE
  "CMakeFiles/example_ccsd_energy.dir/ccsd_energy.cpp.o"
  "CMakeFiles/example_ccsd_energy.dir/ccsd_energy.cpp.o.d"
  "example_ccsd_energy"
  "example_ccsd_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_ccsd_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
