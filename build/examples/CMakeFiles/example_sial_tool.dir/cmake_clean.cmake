file(REMOVE_RECURSE
  "CMakeFiles/example_sial_tool.dir/sial_tool.cpp.o"
  "CMakeFiles/example_sial_tool.dir/sial_tool.cpp.o.d"
  "example_sial_tool"
  "example_sial_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_sial_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
