# Empty dependencies file for example_sial_tool.
# This may be replaced when dependencies are built.
