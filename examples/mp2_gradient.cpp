// MP2 with served (disk-backed) arrays — the workload class of Fig. 7.
//
// Shows: the two-phase pattern where first-order amplitudes are
// `prepare`d to I/O servers, a server_barrier flushes the write-behind
// queues, and a second pass `request`s the blocks back; plus the
// dry-run report and validation against the dense reference.
#include <cstdio>

#include "chem/integrals.hpp"
#include "chem/programs.hpp"
#include "chem/reference.hpp"
#include "sip/launch.hpp"

int main(int argc, char** argv) {
  long norb = 12;
  long nocc = 4;
  int workers = 3;
  int servers = 2;
  if (argc > 1) norb = std::atol(argv[1]);
  if (argc > 2) nocc = std::atol(argv[2]);
  if (argc > 3) workers = std::atoi(argv[3]);
  if (argc > 4) servers = std::atoi(argv[4]);

  sia::chem::register_chem_superinstructions();

  sia::SipConfig config;
  config.workers = workers;
  config.io_servers = servers;
  config.default_segment = 4;
  config.constants = {{"norb", norb}, {"nocc", nocc}};

  std::printf("MP2 with served amplitude arrays: norb=%ld nocc=%ld "
              "workers=%d io_servers=%d\n",
              norb, nocc, workers, servers);

  sia::sip::Sip sip(config);
  std::printf("scratch directory: %s\n", sip.scratch_dir().c_str());
  const sia::sip::RunResult result =
      sip.run_source(sia::chem::mp2_served_source());

  const double want = sia::chem::ref_mp2_energy(norb, nocc);
  std::printf("MP2 energy (SIP)        = %.12f\n", result.scalar("e2"));
  std::printf("MP2 energy (reference)  = %.12f\n", want);
  std::printf("|difference|            = %.3e\n",
              std::abs(result.scalar("e2") - want));
  std::printf("amplitude norm^2        = %.12f (ref %.12f)\n",
              result.scalar("tnorm2"),
              sia::chem::ref_mp2_amp_norm2(norb, nocc));
  std::printf("\n%s\n", result.dry_run.to_string().c_str());
  std::printf("%s\n", result.profile.to_string().c_str());
  return 0;
}
