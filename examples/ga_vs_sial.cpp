// The paper's §VII comparison, as runnable code: the same blocked matrix
// multiply written twice —
//   (a) in SIAL on the SIP, where blocking, data movement, overlap, and
//       scheduling are the runtime's job;
//   (b) against the Global-Arrays-style baseline, where the programmer
//       chooses the layout, computes every section rectangle, and copies
//       data in and out by hand ("the techniques used to achieve good
//       performance must be incorporated manually", §VII).
// Both produce identical numbers; the point is what the source looks like
// and who does the bookkeeping.
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/rng.hpp"
#include "ga/ga.hpp"
#include "sip/launch.hpp"
#include "sip/superinstr.hpp"

namespace {

constexpr long kN = 48;      // matrix dimension
constexpr int kRanks = 4;    // workers / GA ranks
constexpr int kSegment = 8;  // SIAL block size (runtime parameter)

// Deterministic matrix entries (1-based indices), shared by both codes.
double a_entry(long i, long k) {
  return 2.0 * sia::unit_double(sia::hash_combine(11,
             static_cast<std::uint64_t>(i * 10000 + k))) - 1.0;
}
double b_entry(long k, long j) {
  return 2.0 * sia::unit_double(sia::hash_combine(23,
             static_cast<std::uint64_t>(k * 10000 + j))) - 1.0;
}

// ---------------------------------------------------------------------
// (a) SIAL: the algorithm is ~15 lines; no rank, layout, or block math.

constexpr const char* kSialSource = R"(
sial sial_side
aoindex i = 1, n
aoindex j = 1, n
aoindex k = 1, n
distributed A(i,k)
distributed B(k,j)
distributed C(i,j)
temp ta(i,k)
temp tb(k,j)
temp tc(i,j)
temp tmp(i,j)
scalar lsum
scalar cnorm2
pardo i, k
  execute fill_a ta(i,k)
  put A(i,k) = ta(i,k)
endpardo i, k
pardo k, j
  execute fill_b tb(k,j)
  put B(k,j) = tb(k,j)
endpardo k, j
sip_barrier
pardo i, j
  tc(i,j) = 0.0
  do k
    get A(i,k)
    get B(k,j)
    tmp(i,j) = A(i,k) * B(k,j)
    tc(i,j) += tmp(i,j)
  enddo k
  put C(i,j) = tc(i,j)
endpardo i, j
sip_barrier
lsum = 0.0
pardo i, j
  get C(i,j)
  tc(i,j) = C(i,j)
  lsum += tc(i,j) * tc(i,j)
endpardo i, j
cnorm2 = 0.0
collective cnorm2 += lsum
endsial
)";

double run_sial_side() {
  auto& registry = sia::sip::SuperInstructionRegistry::global();
  registry.register_instruction(
      "fill_a", [](sia::sip::SuperInstructionContext& ctx) {
        auto& block = ctx.block_arg(0);
        const auto& sel = ctx.selector(0);
        std::size_t n = 0;
        for (int i = 0; i < sel.extents[0]; ++i) {
          for (int k = 0; k < sel.extents[1]; ++k) {
            block.data()[n++] =
                a_entry(sel.first_element[0] + i, sel.first_element[1] + k);
          }
        }
      });
  registry.register_instruction(
      "fill_b", [](sia::sip::SuperInstructionContext& ctx) {
        auto& block = ctx.block_arg(0);
        const auto& sel = ctx.selector(0);
        std::size_t n = 0;
        for (int k = 0; k < sel.extents[0]; ++k) {
          for (int j = 0; j < sel.extents[1]; ++j) {
            block.data()[n++] =
                b_entry(sel.first_element[0] + k, sel.first_element[1] + j);
          }
        }
      });

  sia::SipConfig config;
  config.workers = kRanks;
  config.io_servers = 0;
  config.default_segment = kSegment;
  config.constants = {{"n", kN}};
  sia::sip::Sip sip(config);
  return std::sqrt(sip.run_source(kSialSource).scalar("cnorm2"));
}

// ---------------------------------------------------------------------
// (b) GA: every rectangle, buffer, and loop bound is the programmer's.

double run_ga_side() {
  using sia::ga::GaTeam;
  using sia::ga::GlobalArray;
  GlobalArray a(kRanks, std::vector<long>{kN, kN});
  GlobalArray b(kRanks, std::vector<long>{kN, kN});
  GlobalArray c(kRanks, std::vector<long>{kN, kN});

  GaTeam team(kRanks);
  team.parallel([&](int rank) {
    long lo = 0, hi = 0;
    a.distribution(rank, &lo, &hi);
    // Manual fill of the local slabs, row by row.
    std::vector<double> row(kN);
    for (long i = lo; i <= hi; ++i) {
      for (long k = 0; k < kN; ++k) {
        row[static_cast<std::size_t>(k)] = a_entry(i + 1, k + 1);
      }
      a.put(rank, std::vector<long>{i, 0}, std::vector<long>{i, kN - 1},
            row.data());
      for (long j = 0; j < kN; ++j) {
        row[static_cast<std::size_t>(j)] = b_entry(i + 1, j + 1);
      }
      b.put(rank, std::vector<long>{i, 0}, std::vector<long>{i, kN - 1},
            row.data());
    }
    team.sync();

    // Blocked multiply: the programmer picks the block size, computes all
    // the section rectangles, and double-buffers by hand (here: plain
    // blocking gets — adding overlap would mean nbget/nbwait juggling).
    c.distribution(rank, &lo, &hi);
    std::vector<double> ablk(kSegment * kSegment);
    std::vector<double> bblk(kSegment * kSegment);
    std::vector<double> cblk(kSegment * kSegment);
    for (long i0 = lo; i0 <= hi; i0 += kSegment) {
      const long ih = std::min<long>(i0 + kSegment - 1, hi);
      for (long j0 = 0; j0 < kN; j0 += kSegment) {
        const long jh = std::min<long>(j0 + kSegment - 1, kN - 1);
        std::fill(cblk.begin(), cblk.end(), 0.0);
        for (long k0 = 0; k0 < kN; k0 += kSegment) {
          const long kh = std::min<long>(k0 + kSegment - 1, kN - 1);
          a.get(rank, std::vector<long>{i0, k0}, std::vector<long>{ih, kh},
                ablk.data());
          b.get(rank, std::vector<long>{k0, j0}, std::vector<long>{kh, jh},
                bblk.data());
          const long mi = ih - i0 + 1, nj = jh - j0 + 1, kk = kh - k0 + 1;
          for (long i = 0; i < mi; ++i) {
            for (long p = 0; p < kk; ++p) {
              const double av =
                  ablk[static_cast<std::size_t>(i * kk + p)];
              for (long j = 0; j < nj; ++j) {
                cblk[static_cast<std::size_t>(i * nj + j)] +=
                    av * bblk[static_cast<std::size_t>(p * nj + j)];
              }
            }
          }
        }
        c.put(rank, std::vector<long>{i0, j0}, std::vector<long>{ih, jh},
              cblk.data());
      }
    }
    team.sync();
  });

  // Frobenius norm from rank 0.
  std::vector<double> all(kN * kN);
  c.get(0, std::vector<long>{0, 0}, std::vector<long>{kN - 1, kN - 1},
        all.data());
  double norm2 = 0.0;
  for (const double v : all) norm2 += v * v;
  return std::sqrt(norm2);
}

}  // namespace

int main() {
  std::printf("Blocked C = A*B, n=%ld, %d ranks, block %d\n\n", kN, kRanks,
              kSegment);
  const double sial = run_sial_side();
  const double ga = run_ga_side();
  std::printf("SIAL on the SIP : ||C|| = %.12f\n", sial);
  std::printf("GA baseline     : ||C|| = %.12f\n", ga);
  std::printf("difference      : %.3e\n", std::abs(sial - ga));
  std::printf("\nSame numbers; the difference is in the source: the GA "
              "side owns every\nrectangle, buffer, and overlap decision; "
              "the SIAL side names blocks and\nlets the SIP manage "
              "placement, transfer, and scheduling (paper section "
              "VII).\n");
  return std::abs(sial - ga) < 1e-9 ? 0 : 1;
}
