// Fock-matrix build — the workload of the paper's Fig. 6 (the diamond
// nano-crystal strong-scaling study), at interpreter scale.
//
// Shows: on-demand integral generation inside the pardo body (nothing is
// stored), static replicated data, contraction-based J/K digestion, and
// the segment-size tuning loop the paper highlights ("the correct choice
// of segment size is the most significant factor").
#include <cstdio>

#include "chem/integrals.hpp"
#include "chem/programs.hpp"
#include "chem/reference.hpp"
#include "common/timer.hpp"
#include "sip/launch.hpp"

int main(int argc, char** argv) {
  long norb = 16;
  int workers = 4;
  if (argc > 1) norb = std::atol(argv[1]);
  if (argc > 2) workers = std::atoi(argv[2]);

  sia::chem::register_chem_superinstructions();
  const double want = sia::chem::ref_fock_norm(norb);
  std::printf("Fock build: norb=%ld workers=%d  (reference ||F|| = %.10f)\n",
              norb, workers, want);
  std::printf("%6s  %12s  %12s  %10s\n", "seg", "||F||", "error",
              "time[ms]");

  // The paper's segment-size tuning, in miniature: same SIAL program,
  // different runtime parameter.
  for (const int segment : {2, 4, 8}) {
    sia::SipConfig config;
    config.workers = workers;
    config.io_servers = 0;
    config.default_segment = segment;
    config.constants = {{"norb", norb}};

    sia::sip::Sip sip(config);
    const double t0 = sia::wall_seconds();
    const sia::sip::RunResult result =
        sip.run_source(sia::chem::fock_build_source());
    const double ms = (sia::wall_seconds() - t0) * 1e3;
    std::printf("%6d  %12.8f  %12.3e  %10.1f\n", segment,
                result.scalar("fnorm"),
                std::abs(result.scalar("fnorm") - want), ms);
  }
  return 0;
}
