// Quickstart: compile and run a small SIAL program on the SIP.
//
// Demonstrates the whole pipeline in one file: write SIAL source, choose
// runtime parameters (workers, I/O servers, segment size — none of which
// appear in the SIAL text), run it, and read back scalars and the
// profile. The program computes C = A*B on blocked distributed matrices
// and checks the Frobenius norm.
#include <cstdio>

#include "sip/launch.hpp"

namespace {

constexpr const char* kProgram = R"(
sial quickstart
# Blocked matrix multiply: C(i,j) = sum_k A(i,k) * B(k,j).
aoindex i = 1, n
aoindex j = 1, n
aoindex k = 1, n

distributed A(i,k)
distributed B(k,j)
distributed C(i,j)
temp ta(i,k)
temp tb(k,j)
temp tc(i,j)
temp tmp(i,j)
scalar lsum
scalar cnorm2
scalar cnorm

# Fill A and B with deterministic pseudo-random blocks.
pardo i, k
  execute random_block ta(i,k) 1
  put A(i,k) = ta(i,k)
endpardo i, k
pardo k, j
  execute random_block tb(k,j) 2
  put B(k,j) = tb(k,j)
endpardo k, j
sip_barrier

# The multiply: each (i,j) block pair is one parallel task.
pardo i, j
  tc(i,j) = 0.0
  do k
    get A(i,k)
    get B(k,j)
    tmp(i,j) = A(i,k) * B(k,j)
    tc(i,j) += tmp(i,j)
  enddo k
  put C(i,j) = tc(i,j)
endpardo i, j
sip_barrier

# ||C||_F^2, reduced over all workers.
lsum = 0.0
pardo i, j
  get C(i,j)
  tc(i,j) = C(i,j)
  lsum += tc(i,j) * tc(i,j)
endpardo i, j
cnorm2 = 0.0
collective cnorm2 += lsum
cnorm = sqrt(cnorm2)
println "quickstart done"
endsial
)";

}  // namespace

int main() {
  sia::SipConfig config;
  config.workers = 4;          // worker ranks (threads here, MPI processes
                               // in the paper's implementation)
  config.io_servers = 1;       // not used by this program but part of the
                               // standard SIP layout
  config.default_segment = 8;  // the key tuning parameter; NOT in SIAL
  config.constants = {{"n", 64}};

  sia::sip::Sip sip(config);
  const sia::sip::RunResult result = sip.run_source(kProgram);

  std::printf("||C||_F            = %.10f\n", result.scalar("cnorm"));
  std::printf("messages sent      = %lld\n",
              static_cast<long long>(result.traffic.messages_sent));
  std::printf("remote gets issued = %lld (cached reuses: %lld)\n",
              static_cast<long long>(result.workers.gets_issued),
              static_cast<long long>(result.workers.gets_cached));
  std::printf("\n%s\n", result.profile.to_string().c_str());
  std::printf("%s\n", result.dry_run.to_string().c_str());
  return 0;
}
