// CCD-like correlation-energy calculation — the headline workload class
// of the paper (coupled-cluster doubles iterations over very large
// amplitude arrays), scaled down to run in seconds.
//
// Shows: on-demand integral super instructions, distributed amplitude
// arrays with get/put, barrier-separated iteration sweeps, collective
// energy reduction, per-pardo wait-time profiling, and validation against
// the dense reference engine.
#include <cstdio>

#include "chem/integrals.hpp"
#include "chem/programs.hpp"
#include "chem/reference.hpp"
#include "sip/launch.hpp"

int main(int argc, char** argv) {
  long norb = 12;
  long nocc = 4;
  int iterations = 6;
  int workers = 4;
  if (argc > 1) norb = std::atol(argv[1]);
  if (argc > 2) nocc = std::atol(argv[2]);
  if (argc > 3) iterations = std::atoi(argv[3]);
  if (argc > 4) workers = std::atoi(argv[4]);

  sia::chem::register_chem_superinstructions();

  sia::SipConfig config;
  config.workers = workers;
  config.io_servers = 1;
  config.default_segment = 4;
  config.constants = {
      {"norb", norb}, {"nocc", nocc}, {"maxiter", iterations}};

  std::printf("CCD-like doubles iteration: norb=%ld nocc=%ld sweeps=%d "
              "workers=%d segment=%d\n",
              norb, nocc, iterations, workers, config.default_segment);

  sia::sip::Sip sip(config);
  const sia::sip::RunResult result =
      sip.run_source(sia::chem::ccd_energy_source());

  double want_norm2 = 0.0;
  const double want = sia::chem::ref_ccd_energy(norb, nocc, iterations,
                                                &want_norm2);
  std::printf("correlation energy (SIP)       = %.12f\n",
              result.scalar("energy"));
  std::printf("correlation energy (reference) = %.12f\n", want);
  std::printf("|difference|                   = %.3e\n",
              std::abs(result.scalar("energy") - want));
  std::printf("amplitude norm^2 last sweep    = %.12f (ref %.12f)\n",
              result.scalar("rnorm2"), want_norm2);

  std::printf("\n%s\n", result.profile.to_string().c_str());
  std::printf("wait fraction: %.1f%% of work time "
              "(the paper's Fig. 2 bottom line)\n",
              result.profile.wait_percent());
  return 0;
}
