// sial_tool: a command-line front end for the SIAL tool chain.
//
//   sial_tool compile  <file.sial>          parse + check + disassemble
//   sial_tool dryrun   <file.sial> [opts]   master's memory analysis
//   sial_tool run      <file.sial> [opts]   execute on the SIP
//   sial_tool plan     <file.sial> [opts]   print the autotuner's plan and
//                                           predicted time, without running
//   sial_tool model    <file.sial> [opts]   project cluster-scale
//                                           performance (paper sec. VIII)
//
// Options: -w N (workers), -s N (io servers), -g N (segment size),
//          -t N (compute threads per worker; 0 = serial interpreter),
//          -O0 / -O1 / -O2 (bytecode optimization level; default -O2),
//          --dump-bytecode[=opt|raw] (annotated listing of the optimized
//          bytecode, or the raw compiler output),
//          -D name=value (symbolic constant; repeatable),
//          --sparse-threshold X (screen sparse-array blocks with
//          Frobenius norm below X; 0 = exact dense execution),
//          --no-autotune (run with the configuration exactly as given;
//          `run` otherwise plans at launch — knobs set on the command
//          line are pinned and never overridden; SIA_AUTOTUNE=0/1 wins
//          over both)
//
// This is the developer-facing workflow the paper describes: compile the
// SIAL program once, dry-run it to check feasibility, then run it with
// runtime-chosen tuning parameters. Optimizer diagnostics (what was
// hoisted, which barriers were dropped, which temps defeat renaming) are
// rendered to stderr with caret snippets against the source.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "chem/integrals.hpp"
#include "common/error.hpp"
#include "sial/compiler.hpp"
#include "sial/diag.hpp"
#include "sial/disasm.hpp"
#include "sial/opt/optimizer.hpp"
#include "sim/machine.hpp"
#include "sim/program_model.hpp"
#include "sim/report.hpp"
#include "sim/sip_model.hpp"
#include "sip/launch.hpp"
#include "sip/spawn.hpp"

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw sia::Error("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

int usage() {
  std::fprintf(stderr,
               "usage: sial_tool {compile|dryrun|run|plan|model} <file.sial> "
               "[-w workers] [-s servers] [-g segment] [-t threads] "
               "[-O0|-O1|-O2] [--dump-bytecode[=opt|raw]] "
               "[--sparse-threshold X] [-D name=value]... "
               "[--no-autotune] "
               "[--transport thread|loopback|spawn]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  // Spawned rank re-exec: this process is a worker or I/O server of a
  // `--transport spawn` run, not a fresh tool invocation.
  if (sia::sip::is_spawn_child(argc, argv)) {
    sia::chem::register_chem_superinstructions();
    return sia::sip::run_spawn_child(argc, argv);
  }
  if (argc < 3) return usage();
  const std::string command = argv[1];
  const std::string path = argv[2];

  sia::SipConfig config;
  config.constants = {{"norb", 8}, {"nocc", 4}, {"maxiter", 2}, {"n", 8}};
  bool dump_bytecode = false;
  bool dump_raw = false;
  bool no_autotune = false;
  for (int arg = 3; arg < argc; ++arg) {
    if (std::strcmp(argv[arg], "-w") == 0 && arg + 1 < argc) {
      config.workers = std::atoi(argv[++arg]);
    } else if (std::strcmp(argv[arg], "-s") == 0 && arg + 1 < argc) {
      config.io_servers = std::atoi(argv[++arg]);
    } else if (std::strcmp(argv[arg], "-g") == 0 && arg + 1 < argc) {
      config.default_segment = std::atoi(argv[++arg]);
    } else if (std::strcmp(argv[arg], "-t") == 0 && arg + 1 < argc) {
      config.worker_threads = std::atoi(argv[++arg]);
    } else if (std::strncmp(argv[arg], "-O", 2) == 0 &&
               std::strlen(argv[arg]) == 3 && argv[arg][2] >= '0' &&
               argv[arg][2] <= '2') {
      config.opt_level = argv[arg][2] - '0';
    } else if (std::strcmp(argv[arg], "--dump-bytecode") == 0 ||
               std::strcmp(argv[arg], "--dump-bytecode=opt") == 0) {
      dump_bytecode = true;
    } else if (std::strcmp(argv[arg], "--dump-bytecode=raw") == 0) {
      dump_bytecode = true;
      dump_raw = true;
    } else if (std::strcmp(argv[arg], "--sparse-threshold") == 0 &&
               arg + 1 < argc) {
      config.sparse_threshold = std::atof(argv[++arg]);
    } else if (std::strcmp(argv[arg], "--no-autotune") == 0) {
      no_autotune = true;
    } else if (std::strcmp(argv[arg], "--transport") == 0 && arg + 1 < argc) {
      config.transport = argv[++arg];
    } else if (std::strcmp(argv[arg], "-D") == 0 && arg + 1 < argc) {
      const std::string def = argv[++arg];
      const std::size_t eq = def.find('=');
      if (eq == std::string::npos) return usage();
      config.constants[def.substr(0, eq)] = std::atol(def.c_str() + eq + 1);
    } else {
      return usage();
    }
  }

  try {
    sia::chem::register_chem_superinstructions();
    const std::string source = read_file(path);
    const sia::sial::CompiledProgram program =
        sia::sial::compile_sial(source);

    // The mid-end runs here too so the tool can show its diagnostics and
    // the optimized listing; the launch re-runs it from the same raw
    // program (optimize is deterministic).
    const sia::sial::opt::OptResult opt =
        sia::sial::opt::optimize(program, config.opt_level);
    std::fputs(
        sia::sial::render_diags(opt.diagnostics, source, path).c_str(),
        stderr);

    if (dump_bytecode) {
      std::fputs(dump_raw
                     ? sia::sial::disassemble(program).c_str()
                     : sia::sial::disassemble_annotated(opt.program).c_str(),
                 stdout);
      if (command == "compile") return 0;
    }

    if (command == "compile") {
      std::fputs(sia::sial::disassemble(program).c_str(), stdout);
      return 0;
    }
    if (command == "dryrun") {
      sia::sip::Sip sip(config);
      std::fputs(sip.analyze(program).to_string().c_str(), stdout);
      return 0;
    }
    if (command == "plan") {
      const sia::sip::Sip sip(config);
      const sia::sip::PlanChoice choice = sip.plan(program);
      std::printf("plan: %s\n", choice.summary.c_str());
      std::printf("predicted %.3f s (serial baseline %.3f s), "
                  "%d candidates swept, %s calibration\n",
                  choice.predicted_seconds, choice.baseline_seconds,
                  choice.candidates, choice.calibrated ? "host" : "cold");
      if (!choice.pinned.empty()) {
        std::printf("pinned by user:");
        for (const std::string& knob : choice.pinned) {
          std::printf(" %s", knob.c_str());
        }
        std::printf("\n");
      }
      return 0;
    }
    if (command == "model") {
      const sia::sial::ResolvedProgram resolved(opt.program, config);
      const sia::sim::WorkloadModel workload =
          sia::sim::model_program(resolved);
      std::printf("derived workload '%s': %.3g total flops, %zu phases\n",
                  workload.name.c_str(), workload.total_flops(),
                  workload.phases.size());
      for (const auto& phase : workload.phases) {
        std::printf("  %-16s %lld tasks x %d sweeps, %.3g flops/task, "
                    "%lld fetches/task\n",
                    phase.name.c_str(),
                    static_cast<long long>(phase.tasks), phase.sweeps,
                    phase.flops_per_task,
                    static_cast<long long>(phase.fetches_per_task));
      }
      const sia::sim::MachineModel machine = sia::sim::cray_xt5();
      std::printf("\nprojected on %s:\n%8s %12s %8s\n",
                  machine.name.c_str(), "cores", "seconds", "wait%");
      for (const long p : {64L, 256L, 1024L, 4096L, 16384L}) {
        const sia::sim::SiaOutcome outcome = sia::sim::simulate_sia(
            machine, workload, p, sia::sim::SimOptions{});
        std::printf("%8ld %12.3f %8.1f\n", p, outcome.seconds,
                    outcome.wait_percent);
      }
      return 0;
    }
    if (command == "run") {
      config.autotune = !no_autotune;
      sia::sip::Sip sip(config);
      // run_source (not run): spawn mode ships the source to children.
      const sia::sip::RunResult result = sip.run_source(source);
      std::printf("final scalars:\n");
      for (const auto& [name, value] : result.scalars) {
        std::printf("  %-16s = %.12g\n", name.c_str(), value);
      }
      std::printf("\n%s", result.profile.to_string().c_str());
      return 0;
    }
    return usage();
  } catch (const std::exception& error) {
    std::fprintf(stderr, "sial_tool: %s\n", error.what());
    return 1;
  }
}
