// Tests for the cluster-scale performance simulator: determinism, model
// monotonicity, and the qualitative shapes the paper's figures rely on.
#include <gtest/gtest.h>

#include "chem/system.hpp"
#include "sim/des.hpp"
#include "sim/ga_model.hpp"
#include "sim/machine.hpp"
#include "sim/report.hpp"
#include "sim/sip_model.hpp"
#include "sim/workload.hpp"

namespace sia::sim {
namespace {

TEST(MachineTest, EffectiveBandwidthDegradesPastBisection) {
  const MachineModel machine = cray_xt5();
  EXPECT_DOUBLE_EQ(machine.effective_bw(100), machine.link_bw);
  EXPECT_LT(machine.effective_bw(100000), machine.link_bw);
  EXPECT_LT(machine.effective_bw(100000), machine.effective_bw(50000));
}

TEST(MachineTest, BgpIsRoughlyFourTimesSlowerThanXt5) {
  const double ratio = cray_xt5().flops_per_core / bluegene_p().flops_per_core;
  EXPECT_NEAR(ratio, 4.0, 1.0);
}

TEST(WorkloadTest, CcsdFlopsScaleSteeply) {
  const auto small = ccsd_iteration(chem::toy_system(200, 20), 20);
  const auto big = ccsd_iteration(chem::toy_system(400, 40), 20);
  // CCSD is ~n^6: doubling the system must grow flops by far more than 8x.
  EXPECT_GT(big.total_flops(), 30.0 * small.total_flops());
}

TEST(WorkloadTest, TriplesDominateCcsdT) {
  const auto system = chem::rdx();
  const auto ccsd = ccsd_energy(system, 20, 10);
  const auto with_t = ccsd_t(system, 20, 10);
  EXPECT_GT(with_t.total_flops(), 1.5 * ccsd.total_flops());
}

TEST(SimulatorTest, Deterministic) {
  const MachineModel machine = cray_xt5();
  const auto workload = ccsd_iteration(chem::rdx(), 24);
  SimOptions options;
  const WorkloadResult a = simulate_workload(machine, workload, 512, options);
  const WorkloadResult b = simulate_workload(machine, workload, 512, options);
  EXPECT_EQ(a.seconds, b.seconds);
  EXPECT_EQ(a.chunks, b.chunks);
}

TEST(SimulatorTest, MoreWorkersFasterInScalingRegime) {
  const MachineModel machine = cray_xt5();
  const auto workload = ccsd_iteration(chem::rdx(), 24);
  SimOptions options;
  double previous = 1e30;
  for (const long p : {256, 512, 1024, 2048}) {
    const double t = simulate_workload(machine, workload, p, options).seconds;
    EXPECT_LT(t, previous) << p << " cores";
    previous = t;
  }
}

TEST(SimulatorTest, EfficiencyDecreasesButStaysReasonable) {
  const MachineModel machine = cray_xt5();
  const auto workload = ccsd_iteration(chem::hmx(), 24);
  SimOptions options;
  std::vector<long> procs = {1000, 2000, 4000, 8000};
  std::vector<double> times;
  for (const long p : procs) {
    times.push_back(simulate_workload(machine, workload, p, options).seconds);
  }
  const auto eff = scaling_efficiency(procs, times, 0);
  EXPECT_NEAR(eff[0], 100.0, 1e-9);
  for (std::size_t k = 1; k < eff.size(); ++k) {
    EXPECT_LE(eff[k], 101.0);
    EXPECT_GE(eff[k], 40.0) << "collapsed at " << procs[k];
  }
}

TEST(SimulatorTest, OverlapBeatsBlocking) {
  const MachineModel machine = cray_xt5();
  const auto workload = ccsd_iteration(chem::rdx(), 24);
  SimOptions overlap;
  SimOptions blocking;
  blocking.overlap = false;
  const double t_overlap =
      simulate_workload(machine, workload, 1024, overlap).seconds;
  const double t_blocking =
      simulate_workload(machine, workload, 1024, blocking).seconds;
  EXPECT_LT(t_overlap, t_blocking);
}

TEST(SimulatorTest, WaitPercentSmallWhenTuned) {
  // The paper reports 8-13% wait for the tuned Fig. 2 runs; the simulator
  // should be in a compatible regime at moderate scale.
  const MachineModel machine = sun_opteron_ib();
  const auto workload = ccsd_iteration(chem::luciferin(), 24);
  SimOptions options;
  const WorkloadResult result =
      simulate_workload(machine, workload, 128, options);
  EXPECT_GT(result.wait_percent, 0.0);
  EXPECT_LT(result.wait_percent, 50.0);
}

TEST(SimulatorTest, RefetchThrashSlowsDown) {
  // The untuned BG/P port: premature prefetch evicts blocks before use,
  // so they are refetched synchronously and overlap is lost entirely.
  const MachineModel machine = bluegene_p();
  const auto workload = ccsd_iteration(chem::water_cluster(), 16);
  SimOptions tuned;
  SimOptions thrashing;
  thrashing.refetch_factor = 16.0;
  thrashing.overlap = false;
  const double t_tuned =
      simulate_workload(machine, workload, 512, tuned).seconds;
  const double t_thrash =
      simulate_workload(machine, workload, 512, thrashing).seconds;
  EXPECT_GT(t_thrash, 1.5 * t_tuned);
}

TEST(SimulatorTest, MasterBottleneckEmergesAtHugeScale) {
  // Strong scaling must eventually turn over (Fig. 6's behaviour beyond
  // 72k cores): time at some huge count exceeds the minimum over the
  // sweep.
  const MachineModel machine = cray_xt5();
  const auto workload = fock_build(chem::diamond_nv(), 40);
  SimOptions options;
  double best = 1e30;
  for (const long p : {12000, 24000, 48000, 72000}) {
    best = std::min(
        best, simulate_workload(machine, workload, p, options).seconds);
  }
  const double huge =
      simulate_workload(machine, workload, 200000, options).seconds;
  EXPECT_GT(huge, best);
}

TEST(SiaModelTest, CompletesWithinMachineMemory) {
  const SiaOutcome outcome =
      simulate_sia(cray_xt5(), ccsd_energy(chem::rdx(), 24, 10), 1000,
                   SimOptions{});
  EXPECT_TRUE(outcome.completed);
  EXPECT_GT(outcome.seconds, 0.0);
}

TEST(SiaModelTest, SpillsToDiskInsteadOfFailing) {
  // Starved memory: the SIA model keeps running (served arrays) but
  // slower — the paper's adaptability argument.
  const auto workload = mp2_gradient(chem::cytosine_oh(), 16);
  const MachineModel machine = sgi_altix();
  const SiaOutcome roomy =
      simulate_sia(machine, workload, 64, SimOptions{}, 4.0e9);
  const SiaOutcome tight =
      simulate_sia(machine, workload, 16, SimOptions{}, 0.03e9);
  EXPECT_TRUE(roomy.completed);
  EXPECT_TRUE(tight.completed);
  EXPECT_TRUE(tight.spilled_to_disk);
  EXPECT_FALSE(roomy.spilled_to_disk);
}

TEST(GaModelTest, RigidLayoutFailsPerCoreMemory) {
  const auto workload = mp2_gradient(chem::cytosine_oh(), 16);
  const GaOutcome outcome =
      simulate_ga(sgi_altix(), workload, 256, 1.0e9, 24.0 * 3600.0);
  EXPECT_FALSE(outcome.completed);
  EXPECT_NE(outcome.reason.find("memory"), std::string::npos);
}

TEST(GaModelTest, CompletesWithEnoughMemory) {
  const auto workload = mp2_gradient(chem::cytosine_oh(), 16);
  const GaOutcome outcome =
      simulate_ga(sgi_altix(), workload, 64, 2.0e9, 24.0 * 3600.0);
  EXPECT_TRUE(outcome.completed) << outcome.reason;
}

TEST(GaModelTest, SlowerThanSiaAtSameScale) {
  const auto workload = mp2_gradient(chem::cytosine_oh(), 16);
  const MachineModel machine = sgi_altix();
  const SiaOutcome sia =
      simulate_sia(machine, workload, 64, SimOptions{}, 1.0e9);
  const GaOutcome ga = simulate_ga(machine, workload, 64, 2.0e9, 0.0);
  ASSERT_TRUE(sia.completed);
  EXPECT_GT(ga.seconds, sia.seconds);
}

TEST(ReportTest, EfficiencyRelativeToBase) {
  const std::vector<long> procs = {100, 200, 400};
  const std::vector<double> times = {100.0, 60.0, 40.0};
  const auto eff = scaling_efficiency(procs, times, 0);
  EXPECT_DOUBLE_EQ(eff[0], 100.0);
  EXPECT_NEAR(eff[1], 100.0 * 100.0 * 100.0 / (60.0 * 200.0), 1e-9);
}

TEST(ReportTest, Formatting) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_DOUBLE_EQ(to_minutes(120.0), 2.0);
}

}  // namespace
}  // namespace sia::sim
