// SIP feature tests: subindices (slices, insertions, do-in/pardo-in),
// local arrays with wildcard allocation, and segment-size overrides.
#include <gtest/gtest.h>

#include "sip/launch.hpp"

namespace sia::sip {
namespace {

SipConfig feature_config(int workers = 2) {
  SipConfig config;
  config.workers = workers;
  config.io_servers = 0;
  config.default_segment = 4;
  config.subsegments_per_segment = 2;
  config.constants = {{"n", 8}};
  return config;
}

RunResult run(const std::string& body,
              SipConfig config = feature_config()) {
  Sip sip(config);
  return sip.run_source("sial test\n" + body + "\nendsial\n");
}

TEST(SipFeatureTest, DoInIteratesSubsegmentsOfCurrentBlock) {
  // n = 8, segment 4 -> 2 segments; 2 subsegments each -> ii visits 4
  // values total, 2 per super segment.
  const RunResult result = run(R"(
moindex i = 1, n
subindex ii of i
scalar count
scalar subsum
do i
  do ii in i
    count += 1.0
    subsum += ii
  enddo ii
enddo i
)");
  EXPECT_DOUBLE_EQ(result.scalar("count"), 4.0);
  EXPECT_DOUBLE_EQ(result.scalar("subsum"), 1.0 + 2.0 + 3.0 + 4.0);
}

TEST(SipFeatureTest, SliceExtractsSubblock) {
  // Xi is a full block (4 wide); Xii picks the subblock; the paper's
  // Figure 1 scenario reduced to one dimension plus a second index.
  const RunResult result = run(R"(
moindex i = 1, n
moindex j = 1, n
subindex ii of i
temp xi(i,j)
temp xii(ii,j)
scalar norm_full
scalar norm_parts
do i
  do j
    execute fill_coords xi(i,j)
    norm_full += xi(i,j) * xi(i,j)
    do ii in i
      xii(ii,j) = xi(ii,j)
      norm_parts += xii(ii,j) * xii(ii,j)
    enddo ii
  enddo j
enddo i
)");
  // Slices tile the block exactly: the norms must agree.
  EXPECT_NEAR(result.scalar("norm_parts"), result.scalar("norm_full"),
              1e-9);
  EXPECT_GT(result.scalar("norm_full"), 0.0);
}

TEST(SipFeatureTest, InsertionWritesBackSubblock) {
  const RunResult result = run(R"(
moindex i = 1, n
moindex j = 1, n
subindex ii of i
temp xi(i,j)
temp xii(ii,j)
scalar diff
do i
  do j
    execute fill_coords xi(i,j)
    do ii in i
      xii(ii,j) = xi(ii,j)
      xii(ii,j) *= 2.0
      xi(ii,j) = xii(ii,j)
    enddo ii
    # xi is now exactly doubled
    diff += xi(i,j) * xi(i,j)
  enddo j
enddo i
)");
  EXPECT_GT(result.scalar("diff"), 0.0);
}

TEST(SipFeatureTest, InsertionDoublesExactly) {
  const RunResult result = run(R"(
moindex i = 1, n
moindex j = 1, n
subindex ii of i
temp xi(i,j)
temp yi(i,j)
temp xii(ii,j)
temp di(i,j)
scalar err
do i
  do j
    execute fill_coords xi(i,j)
    execute fill_coords yi(i,j)
    yi(i,j) *= 2.0
    do ii in i
      xii(ii,j) = xi(ii,j)
      xii(ii,j) *= 2.0
      xi(ii,j) = xii(ii,j)
    enddo ii
    di(i,j) = xi(i,j) - yi(i,j)
    err += di(i,j) * di(i,j)
  enddo j
enddo i
)");
  EXPECT_NEAR(result.scalar("err"), 0.0, 1e-18);
}

TEST(SipFeatureTest, PardoInParallelizesSubsegments) {
  const RunResult result = run(R"(
moindex i = 1, n
subindex ii of i
scalar lsum
scalar total
do i
  pardo ii in i
    lsum += 1.0
  endpardo ii
enddo i
total = 0.0
collective total += lsum
)");
  EXPECT_DOUBLE_EQ(result.scalar("total"), 4.0);
}

TEST(SipFeatureTest, StaticSliceAndInsert) {
  const RunResult result = run(R"(
moindex i = 1, n
subindex ii of i
static s(i)
temp t(ii)
scalar sum
do i
  do ii in i
    t(ii) = 1.0
    s(ii) = t(ii)
  enddo ii
enddo i
do i
  sum += s(i) * s(i)
enddo i
)");
  EXPECT_DOUBLE_EQ(result.scalar("sum"), 8.0);
}

TEST(SipFeatureTest, AllocateWildcardRow) {
  // allocate l(*,j) materializes a full row of blocks (the paper's "fully
  // formed in at least one dimension").
  const RunResult result = run(R"(
moindex i = 1, n
moindex j = 1, n
local l(i,j)
temp t(i,j)
scalar sum
do j
  allocate l(*,j)
  do i
    t(i,j) = 1.0
    l(i,j) = t(i,j)
  enddo i
  do i
    sum += l(i,j) * l(i,j)
  enddo i
  deallocate l(*,j)
enddo j
)");
  EXPECT_DOUBLE_EQ(result.scalar("sum"), 64.0);
}

TEST(SipFeatureTest, LocalPersistsAcrossPardoIterations) {
  const RunResult result = run(R"(
moindex i = 1, n
moindex j = 1, n
local l(i,j)
temp t(i,j)
scalar lsum
scalar total
allocate l(*,*)
pardo i, j
  t(i,j) = 2.0
  l(i,j) = t(i,j)
endpardo i, j
pardo i, j
  lsum += l(i,j) * l(i,j)
endpardo i, j
total = 0.0
collective total += lsum
)",
                               feature_config(1));
  // Single worker: the same worker wrote and reads all blocks.
  EXPECT_DOUBLE_EQ(result.scalar("total"), 64.0 * 4.0);
}

TEST(SipFeatureTest, SegmentOverrideChangesGranularity) {
  SipConfig config = feature_config();
  config.segment_overrides["moindex"] = 2;  // 4 segments instead of 2
  const RunResult result = run(R"(
moindex i = 1, n
scalar count
do i
  count += 1.0
enddo i
)",
                               config);
  EXPECT_DOUBLE_EQ(result.scalar("count"), 4.0);
}

TEST(SipFeatureTest, ResultIndependentOfSubsegmentCount) {
  const std::string program = R"(
moindex i = 1, n
moindex j = 1, n
subindex ii of i
temp xi(i,j)
temp xii(ii,j)
scalar norm
do i
  do j
    execute fill_coords xi(i,j)
    do ii in i
      xii(ii,j) = xi(ii,j)
      norm += xii(ii,j) * xii(ii,j)
    enddo ii
  enddo j
enddo i
)";
  SipConfig two = feature_config();
  two.subsegments_per_segment = 2;
  SipConfig four = feature_config();
  four.subsegments_per_segment = 4;
  const RunResult result_two = run(program, two);
  const RunResult result_four = run(program, four);
  EXPECT_NEAR(result_two.scalar("norm"), result_four.scalar("norm"), 1e-9);
}

TEST(SipFeatureTest, PrintStatementsDoNotDisturbResults) {
  const RunResult result = run(R"(
scalar x
println "starting"
x = 42.0
print x
println "done"
)");
  EXPECT_DOUBLE_EQ(result.scalar("x"), 42.0);
}

}  // namespace
}  // namespace sia::sip
