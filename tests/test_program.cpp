// Unit tests for program resolution (symbolic binding, segment math,
// operand resolution, pardo spaces).
#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"
#include "sial/compiler.hpp"
#include "sial/program.hpp"

namespace sia::sial {
namespace {

SipConfig base_config() {
  SipConfig config;
  config.workers = 2;
  config.io_servers = 0;
  config.default_segment = 4;
  config.subsegments_per_segment = 2;
  config.constants = {{"norb", 16}, {"nocc", 8}};
  return config;
}

ResolvedProgram resolve(const std::string& body,
                        SipConfig config = base_config()) {
  return ResolvedProgram(compile_sial("sial test\n" + body + "\nendsial\n"),
                         config);
}

TEST(ProgramTest, MissingConstantThrows) {
  SipConfig config = base_config();
  config.constants.erase("norb");
  EXPECT_THROW(resolve("aoindex mu = 1, norb\n", config), Error);
}

TEST(ProgramTest, IndexRangesResolved) {
  const ResolvedProgram program = resolve(R"(
aoindex mu = 1, norb
moindex i = 1, nocc
moindex a = nocc+1, norb
)");
  const ResolvedIndex& mu = program.index(0);
  EXPECT_EQ(mu.low, 1);
  EXPECT_EQ(mu.high, 16);
  EXPECT_EQ(mu.segment_size, 4);
  EXPECT_EQ(mu.seg_lo, 1);
  EXPECT_EQ(mu.seg_hi, 4);
  const ResolvedIndex& i = program.index(1);
  EXPECT_EQ(i.seg_lo, 1);
  EXPECT_EQ(i.seg_hi, 2);
  const ResolvedIndex& a = program.index(2);
  EXPECT_EQ(a.low, 9);
  EXPECT_EQ(a.seg_lo, 3);  // absolute segment numbers
  EXPECT_EQ(a.seg_hi, 4);
}

TEST(ProgramTest, MisalignedLowBoundThrows) {
  SipConfig config = base_config();
  config.constants["nocc"] = 6;  // 6 % 4 != 0 -> virtuals misaligned
  EXPECT_THROW(resolve("moindex a = nocc+1, norb\n", config), Error);
}

TEST(ProgramTest, SimpleIndexHasUnitSegments) {
  const ResolvedProgram program = resolve("index k = 1, 10\n");
  EXPECT_EQ(program.index(0).segment_size, 1);
  EXPECT_EQ(program.index(0).num_values(), 10);
}

TEST(ProgramTest, TailSegmentExtent) {
  SipConfig config = base_config();
  config.constants["norb"] = 14;  // 4+4+4+2
  const ResolvedProgram program = resolve("aoindex mu = 1, norb\n", config);
  const ResolvedIndex& mu = program.index(0);
  EXPECT_EQ(mu.seg_hi, 4);
  EXPECT_EQ(mu.segment_extent(4), 2);
  EXPECT_EQ(mu.segment_extent(3), 4);
}

TEST(ProgramTest, SubindexResolution) {
  const ResolvedProgram program = resolve(R"(
moindex i = 1, nocc
subindex ii of i
)");
  const ResolvedIndex& ii = program.index(1);
  EXPECT_EQ(ii.segment_size, 2);  // 4 / 2 subsegments
  EXPECT_EQ(ii.subs_per_segment, 2);
  EXPECT_EQ(ii.seg_lo, 1);
  EXPECT_EQ(ii.seg_hi, 4);  // 8 elements / 2
}

TEST(ProgramTest, SubsegmentsMustDivideSegment) {
  SipConfig config = base_config();
  config.subsegments_per_segment = 3;  // does not divide 4
  EXPECT_THROW(resolve("moindex i = 1, nocc\nsubindex ii of i\n", config),
               Error);
}

TEST(ProgramTest, ArrayGridsComputed) {
  const ResolvedProgram program = resolve(R"(
aoindex mu = 1, norb
moindex i = 1, nocc
distributed d(mu,i)
)");
  const ResolvedArray& array = program.array(0);
  EXPECT_EQ(array.num_segments, (std::vector<int>{4, 2}));
  EXPECT_EQ(array.total_blocks, 8);
  EXPECT_EQ(array.max_block_elements, 16u);
  EXPECT_EQ(array.total_elements, 16u * 8u);
}

TEST(ProgramTest, ResolveOperandBasics) {
  const ResolvedProgram program = resolve(R"(
aoindex mu = 1, norb
moindex i = 1, nocc
temp t(mu,i)
do mu
do i
  t(mu,i) = 0.0
enddo i
enddo mu
)");
  std::vector<long> values(program.indices().size(),
                           kUndefinedIndexValue);
  values[0] = 2;  // mu segment 2
  values[1] = 1;  // i segment 1
  BlockOperand operand;
  for (const Instruction& instr : program.code().code) {
    if (instr.op == Opcode::kBlockScalarOp) operand = instr.blocks[0];
  }
  const BlockSelector sel = program.resolve_operand(operand, values);
  EXPECT_EQ(sel.dim_local[0], 2);
  EXPECT_EQ(sel.dim_local[1], 1);
  EXPECT_FALSE(sel.sliced);
  EXPECT_EQ(sel.extents[0], 4);
  EXPECT_EQ(sel.first_element[0], 5);
  EXPECT_EQ(sel.id(), BlockId(0, std::vector<int>{2, 1}));
}

TEST(ProgramTest, ResolveOperandUndefinedIndexThrows) {
  const ResolvedProgram program = resolve(R"(
aoindex mu = 1, norb
temp t(mu)
do mu
  t(mu) = 0.0
enddo mu
)");
  std::vector<long> values(program.indices().size(),
                           kUndefinedIndexValue);
  BlockOperand operand;
  for (const Instruction& instr : program.code().code) {
    if (instr.op == Opcode::kBlockScalarOp) operand = instr.blocks[0];
  }
  EXPECT_THROW(program.resolve_operand(operand, values), RuntimeError);
}

TEST(ProgramTest, VirtualIndexAddressesAbsoluteSegments) {
  const ResolvedProgram program = resolve(R"(
moindex p = 1, norb
moindex a = nocc+1, norb
temp t(p)
do a
  t(a) = 0.0
enddo a
)");
  // `a` (virtual, segments 3..4) addressing the full-range array `t`.
  std::vector<long> values(program.indices().size(),
                           kUndefinedIndexValue);
  values[1] = 3;
  BlockOperand operand;
  for (const Instruction& instr : program.code().code) {
    if (instr.op == Opcode::kBlockScalarOp) operand = instr.blocks[0];
  }
  const BlockSelector sel = program.resolve_operand(operand, values);
  EXPECT_EQ(sel.dim_local[0], 3);
  EXPECT_EQ(sel.first_element[0], 9);
}

TEST(ProgramTest, SubindexSliceSelector) {
  const ResolvedProgram program = resolve(R"(
moindex i = 1, nocc
subindex ii of i
temp t(i)
do i
do ii in i
  t(ii) = 0.0
enddo ii
enddo i
)");
  std::vector<long> values(program.indices().size(),
                           kUndefinedIndexValue);
  values[0] = 2;  // super segment 2 covers elements 5..8
  values[1] = 4;  // second subsegment of segment 2: elements 7..8
  BlockOperand operand;
  for (const Instruction& instr : program.code().code) {
    if (instr.op == Opcode::kBlockScalarOp) operand = instr.blocks[0];
  }
  const BlockSelector sel = program.resolve_operand(operand, values);
  EXPECT_TRUE(sel.sliced);
  EXPECT_EQ(sel.dim_local[0], 2);      // containing block
  EXPECT_EQ(sel.slice_origin[0], 2);   // offset within the block
  EXPECT_EQ(sel.extents[0], 2);        // subsegment extent
  EXPECT_EQ(sel.block_extents[0], 4);
  EXPECT_EQ(sel.first_element[0], 7);
}

TEST(ProgramTest, PardoSpaceUnfiltered) {
  const ResolvedProgram program = resolve(R"(
moindex i = 1, nocc
moindex j = 1, nocc
pardo i, j
endpardo i, j
)");
  std::vector<long> values(program.indices().size(),
                           kUndefinedIndexValue);
  const PardoInfo& pardo = program.code().pardos[0];
  EXPECT_EQ(program.pardo_dims(pardo, values), (std::vector<long>{2, 2}));
  EXPECT_EQ(program.pardo_filtered_space(pardo, values).size(), 4u);
}

TEST(ProgramTest, PardoWhereFiltersSpace) {
  const ResolvedProgram program = resolve(R"(
moindex i = 1, nocc
moindex j = 1, nocc
pardo i, j where i < j
endpardo i, j
)");
  std::vector<long> values(program.indices().size(),
                           kUndefinedIndexValue);
  const PardoInfo& pardo = program.code().pardos[0];
  const auto filtered = program.pardo_filtered_space(pardo, values);
  ASSERT_EQ(filtered.size(), 1u);  // only (1,2) of the 2x2 space
  std::vector<long> decoded(2);
  program.pardo_decode(pardo, values, filtered[0], decoded);
  EXPECT_EQ(decoded, (std::vector<long>{1, 2}));
}

TEST(ProgramTest, PardoDecodeRoundTrip) {
  const ResolvedProgram program = resolve(R"(
aoindex mu = 1, norb
moindex i = 1, nocc
pardo mu, i
endpardo mu, i
)");
  std::vector<long> values(program.indices().size(),
                           kUndefinedIndexValue);
  const PardoInfo& pardo = program.code().pardos[0];
  const auto dims = program.pardo_dims(pardo, values);
  std::vector<long> decoded(2);
  std::set<std::pair<long, long>> seen;
  for (std::int64_t raw = 0; raw < dims[0] * dims[1]; ++raw) {
    program.pardo_decode(pardo, values, raw, decoded);
    seen.insert({decoded[0], decoded[1]});
    EXPECT_GE(decoded[0], 1);
    EXPECT_LE(decoded[0], 4);
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(dims[0] * dims[1]));
}

TEST(ProgramTest, PardoInSpaceDependsOnSuperValue) {
  const ResolvedProgram program = resolve(R"(
moindex i = 1, nocc
subindex ii of i
do i
  pardo ii in i
  endpardo ii
enddo i
)");
  std::vector<long> values(program.indices().size(),
                           kUndefinedIndexValue);
  const PardoInfo& pardo = program.code().pardos[0];
  EXPECT_THROW(program.pardo_dims(pardo, values), RuntimeError);
  values[0] = 2;
  EXPECT_EQ(program.pardo_dims(pardo, values), (std::vector<long>{2}));
  std::vector<long> decoded(1);
  program.pardo_decode(pardo, values, 0, decoded);
  EXPECT_EQ(decoded[0], 3);  // first subsegment of super segment 2
}

TEST(ProgramTest, SegmentOverridePerIndexType) {
  SipConfig config = base_config();
  config.segment_overrides["moindex"] = 2;
  const ResolvedProgram program = resolve(R"(
aoindex mu = 1, norb
moindex i = 1, nocc
)",
                                          config);
  EXPECT_EQ(program.index(0).segment_size, 4);
  EXPECT_EQ(program.index(1).segment_size, 2);
}

TEST(ProgramTest, EvalIntExprArithmetic) {
  const ResolvedProgram program = resolve("scalar x\n");
  IntExpr lhs;
  lhs.kind = IntExpr::Kind::kConstant;
  lhs.constant = "norb";
  IntExpr rhs;
  rhs.kind = IntExpr::Kind::kLiteral;
  rhs.literal = 2;
  IntExpr expr;
  expr.kind = IntExpr::Kind::kDiv;
  expr.lhs = std::make_unique<IntExpr>(lhs);
  expr.rhs = std::make_unique<IntExpr>(rhs);
  EXPECT_EQ(program.eval_int_expr(expr), 8);
  expr.rhs->literal = 0;
  EXPECT_THROW(program.eval_int_expr(expr), Error);
}

}  // namespace
}  // namespace sia::sial
