// Unit tests for the message fabric (the MPI substitute).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "msg/fabric.hpp"
#include "msg/tags.hpp"

namespace sia::msg {
namespace {

Message make(int tag, std::vector<std::int64_t> header = {},
             std::vector<double> data = {}) {
  Message message;
  message.tag = tag;
  message.header = std::move(header);
  message.data = std::move(data);
  return message;
}

TEST(FabricTest, SendStampsSource) {
  Fabric fabric(3);
  fabric.send(1, 2, make(7));
  auto got = fabric.try_recv(2);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->src, 1);
  EXPECT_EQ(got->tag, 7);
}

TEST(FabricTest, FifoOrderPreserved) {
  Fabric fabric(2);
  for (int i = 0; i < 10; ++i) fabric.send(0, 1, make(i));
  for (int i = 0; i < 10; ++i) {
    auto got = fabric.try_recv(1);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->tag, i);
  }
  EXPECT_FALSE(fabric.try_recv(1).has_value());
}

TEST(FabricTest, CrossSenderOrderAfterCausalChain) {
  // A sends to C, then A sends to B; B forwards to C. The forwarded
  // message must be behind A's direct message in C's queue.
  Fabric fabric(3);
  fabric.send(0, 2, make(1));
  fabric.send(0, 1, make(2));
  auto via_b = fabric.try_recv(1);
  ASSERT_TRUE(via_b.has_value());
  fabric.send(1, 2, make(3));
  EXPECT_EQ(fabric.try_recv(2)->tag, 1);
  EXPECT_EQ(fabric.try_recv(2)->tag, 3);
}

TEST(FabricTest, TryRecvTagSkipsOthers) {
  Fabric fabric(2);
  fabric.send(0, 1, make(10));
  fabric.send(0, 1, make(20));
  fabric.send(0, 1, make(10));
  auto got = fabric.try_recv_tag(1, 20);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->tag, 20);
  // Remaining messages keep their order.
  EXPECT_EQ(fabric.try_recv(1)->tag, 10);
  EXPECT_EQ(fabric.try_recv(1)->tag, 10);
}

TEST(FabricTest, PayloadRoundTrips) {
  Fabric fabric(2);
  fabric.send(0, 1, make(1, {4, 5, 6}, {1.5, 2.5}));
  auto got = fabric.try_recv(1);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->header, (std::vector<std::int64_t>{4, 5, 6}));
  EXPECT_EQ(got->data, (std::vector<double>{1.5, 2.5}));
}

TEST(FabricTest, BlockingRecvWakesOnSend) {
  Fabric fabric(2);
  std::thread sender([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    fabric.send(0, 1, make(42));
  });
  auto got = fabric.recv(1);
  sender.join();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->tag, 42);
}

TEST(FabricTest, RecvForTimesOut) {
  Fabric fabric(2);
  EXPECT_FALSE(fabric.recv_for(1, 10).has_value());
}

TEST(FabricTest, StopWakesBlockedReceiver) {
  Fabric fabric(2);
  std::thread stopper([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    fabric.stop();
  });
  EXPECT_FALSE(fabric.recv(1).has_value());
  stopper.join();
  EXPECT_TRUE(fabric.stopped());
}

TEST(FabricTest, SendAfterStopThrows) {
  Fabric fabric(2);
  fabric.stop();
  EXPECT_THROW(fabric.send(0, 1, make(1)), RuntimeError);
}

TEST(FabricTest, SendToBadRankThrows) {
  Fabric fabric(2);
  EXPECT_THROW(fabric.send(0, 5, make(1)), InternalError);
  EXPECT_THROW(fabric.send(-1, 1, make(1)), InternalError);
}

TEST(FabricTest, BarrierSynchronizesAllRanks) {
  constexpr int kRanks = 4;
  Fabric fabric(kRanks);
  std::atomic<int> before{0}, after{0};
  std::vector<std::thread> threads;
  for (int r = 0; r < kRanks; ++r) {
    threads.emplace_back([&, r] {
      before.fetch_add(1);
      fabric.barrier(r);
      EXPECT_EQ(before.load(), kRanks);  // nobody passes until all arrive
      after.fetch_add(1);
      fabric.barrier(r);
      EXPECT_EQ(after.load(), kRanks);
    });
  }
  for (auto& thread : threads) thread.join();
}

TEST(FabricTest, TrafficStatsCountSends) {
  Fabric fabric(3);
  fabric.send(0, 1, make(1, {1, 2}, {1.0, 2.0, 3.0}));
  fabric.send(0, 2, make(2));
  fabric.send(1, 2, make(3));
  const TrafficStats rank0 = fabric.stats(0);
  EXPECT_EQ(rank0.messages_sent, 2);
  EXPECT_EQ(rank0.payload_doubles_sent, 3);
  EXPECT_EQ(rank0.header_words_sent, 2);
  const TrafficStats total = fabric.total_stats();
  EXPECT_EQ(total.messages_sent, 3);
}

TEST(FabricTest, ManyThreadsManyMessages) {
  constexpr int kRanks = 5;
  constexpr int kPerRank = 200;
  Fabric fabric(kRanks);
  std::vector<std::thread> threads;
  std::atomic<int> received{0};
  for (int r = 0; r < kRanks; ++r) {
    threads.emplace_back([&, r] {
      for (int i = 0; i < kPerRank; ++i) {
        fabric.send(r, (r + 1) % kRanks, make(i));
      }
      int got = 0;
      while (got < kPerRank) {
        if (fabric.recv_for(r, 100).has_value()) {
          ++got;
          received.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(received.load(), kRanks * kPerRank);
}

}  // namespace
}  // namespace sia::msg
