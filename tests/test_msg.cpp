// Unit tests for the message fabric (the MPI substitute).
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>
#include <vector>

#include "block/block.hpp"
#include "common/error.hpp"
#include "msg/fabric.hpp"
#include "msg/tags.hpp"

namespace sia::msg {
namespace {

Message make(int tag, std::vector<std::int64_t> header = {},
             std::vector<double> data = {}) {
  Message message;
  message.tag = tag;
  message.header = std::move(header);
  message.data = std::move(data);
  return message;
}

TEST(FabricTest, SendStampsSource) {
  Fabric fabric(3);
  fabric.send(1, 2, make(7));
  auto got = fabric.try_recv(2);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->src, 1);
  EXPECT_EQ(got->tag, 7);
}

TEST(FabricTest, FifoOrderPreserved) {
  Fabric fabric(2);
  for (int i = 0; i < 10; ++i) fabric.send(0, 1, make(i));
  for (int i = 0; i < 10; ++i) {
    auto got = fabric.try_recv(1);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->tag, i);
  }
  EXPECT_FALSE(fabric.try_recv(1).has_value());
}

TEST(FabricTest, CrossSenderOrderAfterCausalChain) {
  // A sends to C, then A sends to B; B forwards to C. The forwarded
  // message must be behind A's direct message in C's queue.
  Fabric fabric(3);
  fabric.send(0, 2, make(1));
  fabric.send(0, 1, make(2));
  auto via_b = fabric.try_recv(1);
  ASSERT_TRUE(via_b.has_value());
  fabric.send(1, 2, make(3));
  EXPECT_EQ(fabric.try_recv(2)->tag, 1);
  EXPECT_EQ(fabric.try_recv(2)->tag, 3);
}

TEST(FabricTest, TryRecvTagSkipsOthers) {
  Fabric fabric(2);
  fabric.send(0, 1, make(10));
  fabric.send(0, 1, make(20));
  fabric.send(0, 1, make(10));
  auto got = fabric.try_recv_tag(1, 20);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->tag, 20);
  // Remaining messages keep their order.
  EXPECT_EQ(fabric.try_recv(1)->tag, 10);
  EXPECT_EQ(fabric.try_recv(1)->tag, 10);
}

TEST(FabricTest, PayloadRoundTrips) {
  Fabric fabric(2);
  fabric.send(0, 1, make(1, {4, 5, 6}, {1.5, 2.5}));
  auto got = fabric.try_recv(1);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->header, (std::vector<std::int64_t>{4, 5, 6}));
  EXPECT_EQ(got->data, (std::vector<double>{1.5, 2.5}));
}

TEST(FabricTest, BlockingRecvWakesOnSend) {
  Fabric fabric(2);
  std::thread sender([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    fabric.send(0, 1, make(42));
  });
  auto got = fabric.recv(1);
  sender.join();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->tag, 42);
}

TEST(FabricTest, RecvForTimesOut) {
  Fabric fabric(2);
  EXPECT_FALSE(fabric.recv_for(1, 10).has_value());
}

TEST(FabricTest, StopWakesBlockedReceiver) {
  Fabric fabric(2);
  std::thread stopper([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    fabric.stop();
  });
  EXPECT_FALSE(fabric.recv(1).has_value());
  stopper.join();
  EXPECT_TRUE(fabric.stopped());
}

TEST(FabricTest, SendAfterStopIsCountedNoOp) {
  // During shutdown, in-flight senders racing fabric.stop() must not blow
  // up the run with a spurious error: the send is swallowed and counted.
  Fabric fabric(2);
  fabric.stop();
  EXPECT_NO_THROW(fabric.send(0, 1, make(1)));
  EXPECT_NO_THROW(fabric.send(1, 0, make(2)));
  EXPECT_FALSE(fabric.recv_for(1, 5).has_value());
  EXPECT_EQ(fabric.total_stats().sends_after_stop, 2);
}

TEST(FabricTest, SendToBadRankThrows) {
  Fabric fabric(2);
  EXPECT_THROW(fabric.send(0, 5, make(1)), InternalError);
  EXPECT_THROW(fabric.send(-1, 1, make(1)), InternalError);
}

TEST(FabricTest, BarrierSynchronizesAllRanks) {
  constexpr int kRanks = 4;
  Fabric fabric(kRanks);
  std::atomic<int> before{0}, after{0};
  std::vector<std::thread> threads;
  for (int r = 0; r < kRanks; ++r) {
    threads.emplace_back([&, r] {
      before.fetch_add(1);
      fabric.barrier(r);
      EXPECT_EQ(before.load(), kRanks);  // nobody passes until all arrive
      after.fetch_add(1);
      fabric.barrier(r);
      EXPECT_EQ(after.load(), kRanks);
    });
  }
  for (auto& thread : threads) thread.join();
}

TEST(FabricTest, TrafficStatsCountSends) {
  Fabric fabric(3);
  fabric.send(0, 1, make(1, {1, 2}, {1.0, 2.0, 3.0}));
  fabric.send(0, 2, make(2));
  fabric.send(1, 2, make(3));
  const TrafficStats rank0 = fabric.stats(0);
  EXPECT_EQ(rank0.messages_sent, 2);
  EXPECT_EQ(rank0.payload_doubles_sent, 3);
  EXPECT_EQ(rank0.header_words_sent, 2);
  const TrafficStats total = fabric.total_stats();
  EXPECT_EQ(total.messages_sent, 3);
}

TEST(FabricTest, BlockPayloadMovesZeroCopy) {
  // A message carrying a BlockPtr must deliver the very same Block object
  // to the receiver — no pack/unpack copy anywhere in the fabric.
  Fabric fabric(2);
  auto block = std::make_shared<Block>(BlockShape(std::vector<int>{3, 4}));
  block->data()[0] = 1.25;
  block->data()[11] = -7.5;
  const Block* raw = block.get();

  Message message;
  message.tag = 5;
  message.header = {9};
  message.block = block;  // sender keeps its reference
  fabric.send(0, 1, std::move(message));

  auto got = fabric.try_recv(1);
  ASSERT_TRUE(got.has_value());
  ASSERT_NE(got->block, nullptr);
  EXPECT_EQ(got->block.get(), raw);  // zero-copy: identical object
  EXPECT_EQ(got->block->data()[0], 1.25);
  EXPECT_EQ(got->block->data()[11], -7.5);

  const TrafficStats stats = fabric.stats(0);
  EXPECT_EQ(stats.zero_copy_messages, 1);
  EXPECT_EQ(stats.zero_copy_doubles, 12);
  EXPECT_EQ(stats.payload_doubles_sent, 12);  // block counts as payload
}

TEST(FabricTest, BlockAndInlineDataBothCountAsPayload) {
  Fabric fabric(2);
  Message message;
  message.tag = 1;
  message.data = {1.0, 2.0};
  message.block =
      std::make_shared<Block>(BlockShape(std::vector<int>{5}));
  fabric.send(0, 1, std::move(message));
  EXPECT_EQ(fabric.stats(0).payload_doubles_sent, 7);
  EXPECT_EQ(fabric.stats(0).zero_copy_doubles, 5);
}

TEST(FabricTest, StopWhileBlockedInRecvFor) {
  // stop() must wake a receiver parked inside recv_for well before its
  // timeout expires, and the receiver must observe nullopt.
  Fabric fabric(2);
  std::thread stopper([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    fabric.stop();
  });
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(fabric.recv_for(1, 10000).has_value());
  const auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  stopper.join();
  EXPECT_LT(waited.count(), 5000);  // did not sleep the full timeout
}

TEST(FabricTest, ConcurrentSendersPreservePerSourceFifo) {
  // Several senders blast numbered messages at one receiver while it
  // drains concurrently. Messages from different sources may interleave,
  // but each source's stream must arrive in send order.
  constexpr int kSenders = 4;
  constexpr int kPerSender = 500;
  Fabric fabric(kSenders + 1);
  const int dst = kSenders;

  std::vector<std::thread> senders;
  for (int s = 0; s < kSenders; ++s) {
    senders.emplace_back([&, s] {
      for (int i = 0; i < kPerSender; ++i) {
        fabric.send(s, dst, make(1, {i}));
      }
    });
  }

  std::map<int, std::int64_t> next_expected;
  int received = 0;
  while (received < kSenders * kPerSender) {
    auto got = fabric.recv_for(dst, 1000);
    ASSERT_TRUE(got.has_value());
    ASSERT_EQ(got->header[0], next_expected[got->src])
        << "out-of-order delivery from rank " << got->src;
    ++next_expected[got->src];
    ++received;
  }
  for (auto& sender : senders) sender.join();
  EXPECT_FALSE(fabric.try_recv(dst).has_value());
}

TEST(FabricTest, ConcurrentTaggedAndFifoReceivers) {
  // One thread drains only tag 2 via try_recv_tag while another drains
  // the rest in FIFO order; nothing is lost or duplicated.
  constexpr int kMessages = 900;  // tags 0,1,2 round-robin
  Fabric fabric(2);
  std::thread sender([&] {
    for (int i = 0; i < kMessages; ++i) {
      fabric.send(0, 1, make(i % 3, {i}));
    }
  });

  std::atomic<int> tagged{0}, fifo{0};
  std::thread tag_drain([&] {
    while (tagged.load() < kMessages / 3) {
      auto got = fabric.try_recv_tag(1, 2);
      if (!got.has_value()) {
        std::this_thread::yield();
        continue;
      }
      EXPECT_EQ(got->tag, 2);
      tagged.fetch_add(1);
    }
  });
  // FIFO receiver competes on the same mailbox; it may legitimately see
  // tag-2 messages the tagged thread has not claimed yet.
  std::int64_t last_tag2 = -1;
  while (fifo.load() + tagged.load() < kMessages) {
    auto got = fabric.recv_for(1, 1000);
    if (!got.has_value()) continue;
    if (got->tag == 2) {
      // Order among tag-2 messages must still be FIFO from this side.
      EXPECT_GT(got->header[0], last_tag2);
      last_tag2 = got->header[0];
      tagged.fetch_add(1);
    } else {
      fifo.fetch_add(1);
    }
  }
  sender.join();
  tag_drain.join();
  EXPECT_EQ(tagged.load() + fifo.load(), kMessages);
  EXPECT_FALSE(fabric.has_message(1));
}

TEST(FabricTest, ManyThreadsManyMessages) {
  constexpr int kRanks = 5;
  constexpr int kPerRank = 200;
  Fabric fabric(kRanks);
  std::vector<std::thread> threads;
  std::atomic<int> received{0};
  for (int r = 0; r < kRanks; ++r) {
    threads.emplace_back([&, r] {
      for (int i = 0; i < kPerRank; ++i) {
        fabric.send(r, (r + 1) % kRanks, make(i));
      }
      int got = 0;
      while (got < kPerRank) {
        if (fabric.recv_for(r, 100).has_value()) {
          ++got;
          received.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(received.load(), kRanks * kPerRank);
}

}  // namespace
}  // namespace sia::msg
