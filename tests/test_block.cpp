// Unit tests for the block layer: segmented ranges, block ids, blocks,
// pools, and the LRU cache.
#include <gtest/gtest.h>

#include <vector>

#include "block/block.hpp"
#include "block/block_cache.hpp"
#include "block/block_id.hpp"
#include "block/block_pool.hpp"
#include "block/index_range.hpp"
#include "common/error.hpp"

namespace sia {
namespace {

// ---------------------------------------------------------------------
// SegmentedRange.

TEST(SegmentedRangeTest, EvenSplit) {
  SegmentedRange range(1, 16, 4);
  EXPECT_EQ(range.num_segments(), 4);
  EXPECT_EQ(range.segment_low(1), 1);
  EXPECT_EQ(range.segment_high(1), 4);
  EXPECT_EQ(range.segment_low(4), 13);
  EXPECT_EQ(range.segment_high(4), 16);
  EXPECT_EQ(range.segment_extent(2), 4);
}

TEST(SegmentedRangeTest, TailSegmentIsShorter) {
  SegmentedRange range(1, 10, 4);
  EXPECT_EQ(range.num_segments(), 3);
  EXPECT_EQ(range.segment_extent(3), 2);
  EXPECT_EQ(range.segment_high(3), 10);
}

TEST(SegmentedRangeTest, SegmentOfElement) {
  SegmentedRange range(1, 12, 5);
  EXPECT_EQ(range.segment_of(1), 1);
  EXPECT_EQ(range.segment_of(5), 1);
  EXPECT_EQ(range.segment_of(6), 2);
  EXPECT_EQ(range.segment_of(12), 3);
}

TEST(SegmentedRangeTest, NonUnitLow) {
  SegmentedRange range(11, 20, 5);
  EXPECT_EQ(range.num_segments(), 2);
  EXPECT_EQ(range.segment_low(1), 11);
  EXPECT_EQ(range.segment_high(2), 20);
}

TEST(SegmentedRangeTest, RejectsEmptyRange) {
  EXPECT_THROW(SegmentedRange(5, 4, 2), Error);
}

TEST(SegmentedRangeTest, RejectsBadSegment) {
  EXPECT_THROW(SegmentedRange(1, 4, 0), Error);
}

TEST(SegmentedRangeTest, OutOfRangeAccessesThrow) {
  SegmentedRange range(1, 8, 4);
  EXPECT_THROW(range.segment_low(0), InternalError);
  EXPECT_THROW(range.segment_low(3), InternalError);
  EXPECT_THROW(range.segment_of(9), InternalError);
}

// ---------------------------------------------------------------------
// BlockId.

class BlockIdLinearize
    : public ::testing::TestWithParam<std::vector<int>> {};

TEST_P(BlockIdLinearize, RoundTripsAllPositions) {
  const std::vector<int> grid = GetParam();
  std::int64_t total = 1;
  for (const int g : grid) total *= g;
  for (std::int64_t linear = 0; linear < total; ++linear) {
    const BlockId id = BlockId::from_linear(9, linear, grid);
    EXPECT_EQ(id.linearize(grid), linear);
    EXPECT_EQ(id.array_id, 9);
    for (int d = 0; d < id.rank; ++d) {
      EXPECT_GE(id.segments[static_cast<std::size_t>(d)], 1);
      EXPECT_LE(id.segments[static_cast<std::size_t>(d)],
                grid[static_cast<std::size_t>(d)]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Grids, BlockIdLinearize,
                         ::testing::Values(std::vector<int>{5},
                                           std::vector<int>{3, 4},
                                           std::vector<int>{2, 3, 4},
                                           std::vector<int>{2, 2, 2, 3}));

TEST(BlockIdTest, HashDistinguishesArrayAndSegments) {
  const std::vector<int> segs = {1, 2};
  BlockId a(1, segs);
  BlockId b(2, segs);
  BlockId c(1, std::vector<int>{2, 1});
  EXPECT_NE(a.hash(), b.hash());
  EXPECT_NE(a.hash(), c.hash());
  EXPECT_EQ(a.hash(), BlockId(1, segs).hash());
}

TEST(BlockIdTest, ToStringShowsSegments) {
  BlockId id(3, std::vector<int>{1, 4, 2});
  EXPECT_EQ(id.to_string(), "a3(1,4,2)");
}

TEST(BlockIdTest, LinearizeRejectsOutOfRange) {
  BlockId id(0, std::vector<int>{5, 1});
  const std::vector<int> grid = {4, 4};
  EXPECT_THROW(id.linearize(grid), InternalError);
}

// ---------------------------------------------------------------------
// Block.

TEST(BlockTest, ZeroInitialized) {
  Block block(BlockShape(std::vector<int>{3, 4}));
  for (const double v : block.data()) EXPECT_EQ(v, 0.0);
  EXPECT_EQ(block.size(), 12u);
}

TEST(BlockTest, AtUsesRowMajorLastFastest) {
  Block block(BlockShape(std::vector<int>{2, 3}));
  block.at(std::vector<int>{1, 2}) = 7.0;
  EXPECT_EQ(block.data()[5], 7.0);
}

TEST(BlockTest, AtRejectsBadIndex) {
  Block block(BlockShape(std::vector<int>{2, 2}));
  EXPECT_THROW(block.at(std::vector<int>{2, 0}), InternalError);
  EXPECT_THROW(block.at(std::vector<int>{0}), InternalError);
}

TEST(BlockTest, CloneIsDeep) {
  Block block(BlockShape(std::vector<int>{2, 2}));
  block.data()[0] = 5.0;
  Block copy = block.clone();
  copy.data()[0] = 9.0;
  EXPECT_EQ(block.data()[0], 5.0);
}

TEST(BlockTest, SliceInsertRoundTrip) {
  Block big(BlockShape(std::vector<int>{4, 4}));
  for (std::size_t i = 0; i < big.size(); ++i) {
    big.data()[i] = static_cast<double>(i);
  }
  const std::vector<int> origin = {1, 2};
  Block sub = slice(big, origin, BlockShape(std::vector<int>{2, 2}));
  EXPECT_EQ(sub.at(std::vector<int>{0, 0}), big.at(std::vector<int>{1, 2}));
  EXPECT_EQ(sub.at(std::vector<int>{1, 1}), big.at(std::vector<int>{2, 3}));

  sub.data()[0] = -1.0;
  insert(big, origin, sub);
  EXPECT_EQ(big.at(std::vector<int>{1, 2}), -1.0);
}

TEST(BlockTest, SliceOutOfBoundsThrows) {
  Block big(BlockShape(std::vector<int>{3, 3}));
  EXPECT_THROW(
      slice(big, std::vector<int>{2, 2}, BlockShape(std::vector<int>{2, 2})),
      InternalError);
}

TEST(BlockShapeTest, RejectsBadExtents) {
  EXPECT_THROW(BlockShape(std::vector<int>{0, 2}), InternalError);
  EXPECT_THROW(BlockShape(std::vector<int>{1, 2, 3, 4, 5, 6, 7}),
               InternalError);
}

// ---------------------------------------------------------------------
// BlockPool.

TEST(BlockPoolTest, AllocatesFromMatchingClass) {
  BlockPool pool({{16, 2}, {64, 1}}, /*allow_heap_fallback=*/false);
  PoolBuffer a = pool.allocate(10);
  EXPECT_GE(a.capacity(), 10u);
  EXPECT_EQ(a.capacity(), 16u);  // smallest class that fits
  PoolBuffer b = pool.allocate(60);
  EXPECT_EQ(b.capacity(), 64u);
  EXPECT_EQ(pool.stats().pool_allocs, 2u);
  EXPECT_EQ(pool.stats().heap_fallbacks, 0u);
}

TEST(BlockPoolTest, StrictModeThrowsWhenExhausted) {
  BlockPool pool({{8, 1}}, /*allow_heap_fallback=*/false);
  PoolBuffer a = pool.allocate(8);
  EXPECT_THROW(pool.allocate(8), RuntimeError);
}

TEST(BlockPoolTest, SlotsAreRecycled) {
  BlockPool pool({{8, 1}}, /*allow_heap_fallback=*/false);
  double* first = nullptr;
  {
    PoolBuffer a = pool.allocate(8);
    first = a.data();
  }
  PoolBuffer b = pool.allocate(8);
  EXPECT_EQ(b.data(), first);
}

TEST(BlockPoolTest, HeapFallbackCounted) {
  BlockPool pool({{8, 1}}, /*allow_heap_fallback=*/true);
  PoolBuffer a = pool.allocate(8);
  PoolBuffer b = pool.allocate(8);   // class exhausted -> heap
  PoolBuffer c = pool.allocate(100); // larger than any class -> heap
  EXPECT_TRUE(b.valid());
  EXPECT_TRUE(c.valid());
  EXPECT_EQ(pool.stats().heap_fallbacks, 2u);
}

TEST(BlockPoolTest, TracksPeakUsage) {
  BlockPool pool({{8, 4}}, false);
  {
    PoolBuffer a = pool.allocate(8);
    PoolBuffer b = pool.allocate(8);
    EXPECT_EQ(pool.stats().in_use_doubles, 16u);
  }
  EXPECT_EQ(pool.stats().in_use_doubles, 0u);
  EXPECT_EQ(pool.stats().peak_in_use_doubles, 16u);
}

TEST(BlockPoolTest, FreeSlotCounting) {
  BlockPool pool({{8, 3}}, false);
  EXPECT_EQ(pool.free_slots_for(5), 3u);
  PoolBuffer a = pool.allocate(5);
  EXPECT_EQ(pool.free_slots_for(5), 2u);
  EXPECT_EQ(pool.free_slots_for(1000), 0u);
}

TEST(BlockPoolTest, MoveTransfersOwnership) {
  BlockPool pool({{8, 1}}, false);
  PoolBuffer a = pool.allocate(8);
  PoolBuffer b = std::move(a);
  EXPECT_FALSE(a.valid());
  EXPECT_TRUE(b.valid());
}

// ---------------------------------------------------------------------
// BlockCache.

BlockPtr make_block(std::size_t elements) {
  return std::make_shared<Block>(
      BlockShape(std::vector<int>{static_cast<int>(elements)}));
}

BlockId bid(int array, int seg) {
  return BlockId(array, std::vector<int>{seg});
}

TEST(BlockCacheTest, HitAndMissCounting) {
  BlockCache cache(100);
  cache.put(bid(0, 1), make_block(10));
  EXPECT_NE(cache.get(bid(0, 1)), nullptr);
  EXPECT_EQ(cache.get(bid(0, 2)), nullptr);
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_EQ(cache.stats().misses, 1);
}

TEST(BlockCacheTest, EvictsLeastRecentlyUsed) {
  BlockCache cache(30);
  cache.put(bid(0, 1), make_block(10));
  cache.put(bid(0, 2), make_block(10));
  cache.put(bid(0, 3), make_block(10));
  cache.get(bid(0, 1));                  // refresh 1
  cache.put(bid(0, 4), make_block(10));  // evicts 2 (LRU)
  EXPECT_TRUE(cache.contains(bid(0, 1)));
  EXPECT_FALSE(cache.contains(bid(0, 2)));
  EXPECT_TRUE(cache.contains(bid(0, 3)));
  EXPECT_TRUE(cache.contains(bid(0, 4)));
  EXPECT_EQ(cache.stats().evictions, 1);
}

TEST(BlockCacheTest, SharedBlocksAreEvictableAndStayValid) {
  // Eviction drops the cache's reference only; outside holders keep the
  // block alive. (Zero-copy transfers hand out aliased shared_ptrs, so
  // shared entries must stay evictable or they would pin the cache full.)
  BlockCache cache(20);
  BlockPtr held = make_block(10);
  held->data()[0] = 42.0;
  cache.put(bid(0, 1), held);  // use_count 2: cache + local
  cache.put(bid(0, 2), make_block(10));
  cache.put(bid(0, 3), make_block(10));  // evicts LRU entry 1
  EXPECT_FALSE(cache.contains(bid(0, 1)));
  EXPECT_TRUE(cache.contains(bid(0, 2)));
  EXPECT_EQ(held.use_count(), 1);
  EXPECT_EQ(held->data()[0], 42.0);
}

TEST(BlockCacheTest, VictimHandlerSeesDirtyFlag) {
  std::vector<std::pair<BlockId, bool>> victims;
  BlockCache cache(20, [&](const BlockId& id, const BlockPtr&, bool dirty) {
    victims.emplace_back(id, dirty);
  });
  cache.put(bid(0, 1), make_block(10), /*dirty=*/true);
  cache.put(bid(0, 2), make_block(10), /*dirty=*/false);
  cache.put(bid(0, 3), make_block(10));  // evicts 1 (dirty)
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(victims[0].first, bid(0, 1));
  EXPECT_TRUE(victims[0].second);
}

TEST(BlockCacheTest, OversizedBlockPassesThrough) {
  bool saw = false;
  BlockCache cache(5, [&](const BlockId&, const BlockPtr&, bool dirty) {
    saw = dirty;
  });
  cache.put(bid(0, 1), make_block(10), /*dirty=*/true);
  EXPECT_TRUE(saw);
  EXPECT_FALSE(cache.contains(bid(0, 1)));
}

TEST(BlockCacheTest, FlushDirtyKeepsEntries) {
  int flushed = 0;
  BlockCache cache(100, [&](const BlockId&, const BlockPtr&, bool) {
    ++flushed;
  });
  cache.put(bid(0, 1), make_block(10), true);
  cache.put(bid(0, 2), make_block(10), false);
  cache.flush_dirty();
  EXPECT_EQ(flushed, 1);
  EXPECT_TRUE(cache.contains(bid(0, 1)));
  cache.flush_dirty();  // now clean; nothing happens
  EXPECT_EQ(flushed, 1);
}

TEST(BlockCacheTest, EraseArrayRemovesOnlyThatArray) {
  BlockCache cache(100);
  cache.put(bid(0, 1), make_block(5));
  cache.put(bid(0, 2), make_block(5));
  cache.put(bid(1, 1), make_block(5));
  EXPECT_EQ(cache.erase_array(0), 2u);
  EXPECT_FALSE(cache.contains(bid(0, 1)));
  EXPECT_TRUE(cache.contains(bid(1, 1)));
}

TEST(BlockCacheTest, ReplacementUpdatesAccounting) {
  BlockCache cache(100);
  cache.put(bid(0, 1), make_block(10));
  EXPECT_EQ(cache.size_doubles(), 10u);
  cache.put(bid(0, 1), make_block(20));
  EXPECT_EQ(cache.size_doubles(), 20u);
  EXPECT_EQ(cache.entry_count(), 1u);
}

}  // namespace
}  // namespace sia
