// Unit tests for the intrinsic block kernels and the super-instruction
// registry.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "blas/elementwise.hpp"
#include "block/block.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "sip/superinstr.hpp"

namespace sia::sip {
namespace {

Block random_block(std::vector<int> extents, std::uint64_t seed) {
  Block block{BlockShape(extents)};
  auto data = block.data();
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = 2.0 * unit_double(hash_combine(seed, i)) - 1.0;
  }
  return block;
}

// ---------------------------------------------------------------------
// block_contract against explicit loops.

TEST(ContractTest, MatrixMultiply) {
  // c(0,2) = a(0,1) * b(1,2): plain matmul with ids {0,1},{1,2}->{0,2}.
  Block a = random_block({3, 4}, 1);
  Block b = random_block({4, 5}, 2);
  Block c(BlockShape(std::vector<int>{3, 5}));
  block_contract(c, std::vector<int>{0, 2}, a, std::vector<int>{0, 1}, b,
                 std::vector<int>{1, 2}, false);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 5; ++j) {
      double want = 0.0;
      for (int k = 0; k < 4; ++k) {
        want += a.at(std::vector<int>{i, k}) * b.at(std::vector<int>{k, j});
      }
      EXPECT_NEAR(c.at(std::vector<int>{i, j}), want, 1e-12);
    }
  }
}

TEST(ContractTest, AccumulateAddsToExisting) {
  Block a = random_block({2, 2}, 3);
  Block b = random_block({2, 2}, 4);
  Block c(BlockShape(std::vector<int>{2, 2}));
  blas::fill(c.data(), 1.0);
  block_contract(c, std::vector<int>{0, 2}, a, std::vector<int>{0, 1}, b,
                 std::vector<int>{1, 2}, true);
  double want = 1.0;
  for (int k = 0; k < 2; ++k) {
    want += a.at(std::vector<int>{0, k}) * b.at(std::vector<int>{k, 0});
  }
  EXPECT_NEAR(c.at(std::vector<int>{0, 0}), want, 1e-12);
}

TEST(ContractTest, PermutedDestination) {
  // c(j,i) = sum_k a(i,k) b(k,j) — destination order swapped.
  Block a = random_block({3, 4}, 5);
  Block b = random_block({4, 2}, 6);
  Block c(BlockShape(std::vector<int>{2, 3}));
  block_contract(c, std::vector<int>{2, 0}, a, std::vector<int>{0, 1}, b,
                 std::vector<int>{1, 2}, false);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 2; ++j) {
      double want = 0.0;
      for (int k = 0; k < 4; ++k) {
        want += a.at(std::vector<int>{i, k}) * b.at(std::vector<int>{k, j});
      }
      EXPECT_NEAR(c.at(std::vector<int>{j, i}), want, 1e-12);
    }
  }
}

TEST(ContractTest, Rank4PaperContraction) {
  // R(m,n,i,j) = sum_{l,s} V(m,n,l,s) T(l,s,i,j) — the §III example.
  enum { m = 10, n = 11, l = 12, s = 13, i = 14, j = 15 };
  Block v = random_block({2, 3, 2, 2}, 7);
  Block t = random_block({2, 2, 3, 2}, 8);
  Block r(BlockShape(std::vector<int>{2, 3, 3, 2}));
  block_contract(r, std::vector<int>{m, n, i, j}, v,
                 std::vector<int>{m, n, l, s}, t,
                 std::vector<int>{l, s, i, j}, false);
  for (int im = 0; im < 2; ++im) {
    for (int in = 0; in < 3; ++in) {
      for (int ii = 0; ii < 3; ++ii) {
        for (int ij = 0; ij < 2; ++ij) {
          double want = 0.0;
          for (int il = 0; il < 2; ++il) {
            for (int is = 0; is < 2; ++is) {
              want += v.at(std::vector<int>{im, in, il, is}) *
                      t.at(std::vector<int>{il, is, ii, ij});
            }
          }
          ASSERT_NEAR(r.at(std::vector<int>{im, in, ii, ij}), want, 1e-12);
        }
      }
    }
  }
}

TEST(ContractTest, InnerContractedIndices) {
  // Contracted index NOT trailing: c(i,j) = sum_k a(k,i) b(j,k).
  Block a = random_block({4, 3}, 9);
  Block b = random_block({2, 4}, 10);
  Block c(BlockShape(std::vector<int>{3, 2}));
  block_contract(c, std::vector<int>{1, 2}, a, std::vector<int>{0, 1}, b,
                 std::vector<int>{2, 0}, false);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 2; ++j) {
      double want = 0.0;
      for (int k = 0; k < 4; ++k) {
        want += a.at(std::vector<int>{k, i}) * b.at(std::vector<int>{j, k});
      }
      EXPECT_NEAR(c.at(std::vector<int>{i, j}), want, 1e-12);
    }
  }
}

TEST(ContractTest, OuterProduct) {
  Block a = random_block({3}, 11);
  Block b = random_block({4}, 12);
  Block c(BlockShape(std::vector<int>{3, 4}));
  block_contract(c, std::vector<int>{0, 1}, a, std::vector<int>{0}, b,
                 std::vector<int>{1}, false);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 4; ++j) {
      EXPECT_NEAR(c.at(std::vector<int>{i, j}),
                  a.at(std::vector<int>{i}) * b.at(std::vector<int>{j}),
                  1e-12);
    }
  }
}

TEST(ContractTest, ExtentMismatchThrows) {
  Block a = random_block({3, 4}, 13);
  Block b = random_block({5, 2}, 14);  // contracted extents 4 vs 5
  Block c(BlockShape(std::vector<int>{3, 2}));
  EXPECT_THROW(block_contract(c, std::vector<int>{0, 2}, a,
                              std::vector<int>{0, 1}, b,
                              std::vector<int>{1, 2}, false),
               RuntimeError);
}

// ---------------------------------------------------------------------
// block_dot.

TEST(BlockDotTest, MatchesManualSum) {
  Block a = random_block({3, 4}, 15);
  Block b = random_block({3, 4}, 16);
  const double got =
      block_dot(a, std::vector<int>{0, 1}, b, std::vector<int>{0, 1});
  double want = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    want += a.data()[i] * b.data()[i];
  }
  EXPECT_NEAR(got, want, 1e-12);
}

TEST(BlockDotTest, PermutedOperand) {
  // dot of a(i,j) with b(j,i): sum a[i][j]*b[j][i].
  Block a = random_block({3, 4}, 17);
  Block b = random_block({4, 3}, 18);
  const double got =
      block_dot(a, std::vector<int>{0, 1}, b, std::vector<int>{1, 0});
  double want = 0.0;
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 4; ++j) {
      want += a.at(std::vector<int>{i, j}) * b.at(std::vector<int>{j, i});
    }
  }
  EXPECT_NEAR(got, want, 1e-12);
}

TEST(BlockDotTest, MismatchedSetsThrow) {
  Block a = random_block({2, 2}, 19);
  Block b = random_block({2, 2}, 20);
  EXPECT_THROW(
      block_dot(a, std::vector<int>{0, 1}, b, std::vector<int>{0, 2}),
      RuntimeError);
}

// ---------------------------------------------------------------------
// Copy / add kernels.

TEST(CopyPermuteTest, AllModes) {
  Block src = random_block({2, 3}, 21);
  Block dst(BlockShape(std::vector<int>{3, 2}));
  block_copy_permute(dst, std::vector<int>{1, 0}, src,
                     std::vector<int>{0, 1}, CopyMode::kAssign);
  EXPECT_EQ(dst.at(std::vector<int>{2, 1}), src.at(std::vector<int>{1, 2}));

  Block acc = dst.clone();
  block_copy_permute(acc, std::vector<int>{1, 0}, src,
                     std::vector<int>{0, 1}, CopyMode::kAccumulate);
  EXPECT_NEAR(acc.at(std::vector<int>{0, 0}),
              2.0 * src.at(std::vector<int>{0, 0}), 1e-12);

  block_copy_permute(acc, std::vector<int>{1, 0}, src,
                     std::vector<int>{0, 1}, CopyMode::kSubtract);
  EXPECT_NEAR(acc.at(std::vector<int>{0, 0}),
              src.at(std::vector<int>{0, 0}), 1e-12);
}

TEST(BlockAddTest, AddAndSubtractWithPermutations) {
  Block a = random_block({2, 3}, 22);
  Block b = random_block({3, 2}, 23);
  Block c(BlockShape(std::vector<int>{2, 3}));
  block_add(c, std::vector<int>{0, 1}, a, std::vector<int>{0, 1}, b,
            std::vector<int>{1, 0}, /*subtract=*/false,
            /*accumulate=*/false);
  EXPECT_NEAR(c.at(std::vector<int>{1, 2}),
              a.at(std::vector<int>{1, 2}) + b.at(std::vector<int>{2, 1}),
              1e-12);
  block_add(c, std::vector<int>{0, 1}, a, std::vector<int>{0, 1}, b,
            std::vector<int>{1, 0}, /*subtract=*/true, /*accumulate=*/true);
  EXPECT_NEAR(c.at(std::vector<int>{1, 2}),
              2.0 * a.at(std::vector<int>{1, 2}), 1e-12);
}

// ---------------------------------------------------------------------
// Registry.

TEST(RegistryTest, RegisterLookupAndList) {
  auto& registry = SuperInstructionRegistry::global();
  bool called = false;
  registry.register_instruction("test_only_op",
                                [&](SuperInstructionContext&) {
                                  called = true;
                                });
  const SuperInstructionFn* fn = registry.lookup("test_only_op");
  ASSERT_NE(fn, nullptr);
  std::vector<ExecArgValue> args;
  const sial::ResolvedProgram program(sial::CompiledProgram{}, SipConfig{});
  SuperInstructionContext context(program, args, 0, 1);
  (*fn)(context);
  EXPECT_TRUE(called);
  EXPECT_EQ(registry.lookup("no_such_op"), nullptr);

  const auto names = registry.names();
  EXPECT_NE(std::find(names.begin(), names.end(), "test_only_op"),
            names.end());
}

TEST(RegistryTest, BuiltinsRegistered) {
  register_builtin_superinstructions();
  auto& registry = SuperInstructionRegistry::global();
  for (const char* name :
       {"fill_value", "fill_coords", "random_block", "block_nrm2",
        "block_asum", "block_max_abs", "print_block_norm"}) {
    EXPECT_NE(registry.lookup(name), nullptr) << name;
  }
}

}  // namespace
}  // namespace sia::sip
