// Unit tests for the intrinsic block kernels and the super-instruction
// registry.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <random>
#include <span>
#include <tuple>

#include "blas/contraction_plan.hpp"
#include "blas/elementwise.hpp"
#include "blas/gemm.hpp"
#include "block/block.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "sip/superinstr.hpp"

namespace sia::sip {
namespace {

Block random_block(std::vector<int> extents, std::uint64_t seed) {
  Block block{BlockShape(extents)};
  auto data = block.data();
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = 2.0 * unit_double(hash_combine(seed, i)) - 1.0;
  }
  return block;
}

// ---------------------------------------------------------------------
// block_contract against explicit loops.

TEST(ContractTest, MatrixMultiply) {
  // c(0,2) = a(0,1) * b(1,2): plain matmul with ids {0,1},{1,2}->{0,2}.
  Block a = random_block({3, 4}, 1);
  Block b = random_block({4, 5}, 2);
  Block c(BlockShape(std::vector<int>{3, 5}));
  block_contract(c, std::vector<int>{0, 2}, a, std::vector<int>{0, 1}, b,
                 std::vector<int>{1, 2}, false);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 5; ++j) {
      double want = 0.0;
      for (int k = 0; k < 4; ++k) {
        want += a.at(std::vector<int>{i, k}) * b.at(std::vector<int>{k, j});
      }
      EXPECT_NEAR(c.at(std::vector<int>{i, j}), want, 1e-12);
    }
  }
}

TEST(ContractTest, AccumulateAddsToExisting) {
  Block a = random_block({2, 2}, 3);
  Block b = random_block({2, 2}, 4);
  Block c(BlockShape(std::vector<int>{2, 2}));
  blas::fill(c.data(), 1.0);
  block_contract(c, std::vector<int>{0, 2}, a, std::vector<int>{0, 1}, b,
                 std::vector<int>{1, 2}, true);
  double want = 1.0;
  for (int k = 0; k < 2; ++k) {
    want += a.at(std::vector<int>{0, k}) * b.at(std::vector<int>{k, 0});
  }
  EXPECT_NEAR(c.at(std::vector<int>{0, 0}), want, 1e-12);
}

TEST(ContractTest, PermutedDestination) {
  // c(j,i) = sum_k a(i,k) b(k,j) — destination order swapped.
  Block a = random_block({3, 4}, 5);
  Block b = random_block({4, 2}, 6);
  Block c(BlockShape(std::vector<int>{2, 3}));
  block_contract(c, std::vector<int>{2, 0}, a, std::vector<int>{0, 1}, b,
                 std::vector<int>{1, 2}, false);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 2; ++j) {
      double want = 0.0;
      for (int k = 0; k < 4; ++k) {
        want += a.at(std::vector<int>{i, k}) * b.at(std::vector<int>{k, j});
      }
      EXPECT_NEAR(c.at(std::vector<int>{j, i}), want, 1e-12);
    }
  }
}

TEST(ContractTest, Rank4PaperContraction) {
  // R(m,n,i,j) = sum_{l,s} V(m,n,l,s) T(l,s,i,j) — the §III example.
  enum { m = 10, n = 11, l = 12, s = 13, i = 14, j = 15 };
  Block v = random_block({2, 3, 2, 2}, 7);
  Block t = random_block({2, 2, 3, 2}, 8);
  Block r(BlockShape(std::vector<int>{2, 3, 3, 2}));
  block_contract(r, std::vector<int>{m, n, i, j}, v,
                 std::vector<int>{m, n, l, s}, t,
                 std::vector<int>{l, s, i, j}, false);
  for (int im = 0; im < 2; ++im) {
    for (int in = 0; in < 3; ++in) {
      for (int ii = 0; ii < 3; ++ii) {
        for (int ij = 0; ij < 2; ++ij) {
          double want = 0.0;
          for (int il = 0; il < 2; ++il) {
            for (int is = 0; is < 2; ++is) {
              want += v.at(std::vector<int>{im, in, il, is}) *
                      t.at(std::vector<int>{il, is, ii, ij});
            }
          }
          ASSERT_NEAR(r.at(std::vector<int>{im, in, ii, ij}), want, 1e-12);
        }
      }
    }
  }
}

TEST(ContractTest, InnerContractedIndices) {
  // Contracted index NOT trailing: c(i,j) = sum_k a(k,i) b(j,k).
  Block a = random_block({4, 3}, 9);
  Block b = random_block({2, 4}, 10);
  Block c(BlockShape(std::vector<int>{3, 2}));
  block_contract(c, std::vector<int>{1, 2}, a, std::vector<int>{0, 1}, b,
                 std::vector<int>{2, 0}, false);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 2; ++j) {
      double want = 0.0;
      for (int k = 0; k < 4; ++k) {
        want += a.at(std::vector<int>{k, i}) * b.at(std::vector<int>{j, k});
      }
      EXPECT_NEAR(c.at(std::vector<int>{i, j}), want, 1e-12);
    }
  }
}

TEST(ContractTest, OuterProduct) {
  Block a = random_block({3}, 11);
  Block b = random_block({4}, 12);
  Block c(BlockShape(std::vector<int>{3, 4}));
  block_contract(c, std::vector<int>{0, 1}, a, std::vector<int>{0}, b,
                 std::vector<int>{1}, false);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 4; ++j) {
      EXPECT_NEAR(c.at(std::vector<int>{i, j}),
                  a.at(std::vector<int>{i}) * b.at(std::vector<int>{j}),
                  1e-12);
    }
  }
}

TEST(ContractTest, ExtentMismatchThrows) {
  Block a = random_block({3, 4}, 13);
  Block b = random_block({5, 2}, 14);  // contracted extents 4 vs 5
  Block c(BlockShape(std::vector<int>{3, 2}));
  EXPECT_THROW(block_contract(c, std::vector<int>{0, 2}, a,
                              std::vector<int>{0, 1}, b,
                              std::vector<int>{1, 2}, false),
               RuntimeError);
}

// ---------------------------------------------------------------------
// block_dot.

TEST(BlockDotTest, MatchesManualSum) {
  Block a = random_block({3, 4}, 15);
  Block b = random_block({3, 4}, 16);
  const double got =
      block_dot(a, std::vector<int>{0, 1}, b, std::vector<int>{0, 1});
  double want = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    want += a.data()[i] * b.data()[i];
  }
  EXPECT_NEAR(got, want, 1e-12);
}

TEST(BlockDotTest, PermutedOperand) {
  // dot of a(i,j) with b(j,i): sum a[i][j]*b[j][i].
  Block a = random_block({3, 4}, 17);
  Block b = random_block({4, 3}, 18);
  const double got =
      block_dot(a, std::vector<int>{0, 1}, b, std::vector<int>{1, 0});
  double want = 0.0;
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 4; ++j) {
      want += a.at(std::vector<int>{i, j}) * b.at(std::vector<int>{j, i});
    }
  }
  EXPECT_NEAR(got, want, 1e-12);
}

TEST(BlockDotTest, MismatchedSetsThrow) {
  Block a = random_block({2, 2}, 19);
  Block b = random_block({2, 2}, 20);
  EXPECT_THROW(
      block_dot(a, std::vector<int>{0, 1}, b, std::vector<int>{0, 2}),
      RuntimeError);
}

// ---------------------------------------------------------------------
// Copy / add kernels.

TEST(CopyPermuteTest, AllModes) {
  Block src = random_block({2, 3}, 21);
  Block dst(BlockShape(std::vector<int>{3, 2}));
  block_copy_permute(dst, std::vector<int>{1, 0}, src,
                     std::vector<int>{0, 1}, CopyMode::kAssign);
  EXPECT_EQ(dst.at(std::vector<int>{2, 1}), src.at(std::vector<int>{1, 2}));

  Block acc = dst.clone();
  block_copy_permute(acc, std::vector<int>{1, 0}, src,
                     std::vector<int>{0, 1}, CopyMode::kAccumulate);
  EXPECT_NEAR(acc.at(std::vector<int>{0, 0}),
              2.0 * src.at(std::vector<int>{0, 0}), 1e-12);

  block_copy_permute(acc, std::vector<int>{1, 0}, src,
                     std::vector<int>{0, 1}, CopyMode::kSubtract);
  EXPECT_NEAR(acc.at(std::vector<int>{0, 0}),
              src.at(std::vector<int>{0, 0}), 1e-12);
}

TEST(BlockAddTest, AddAndSubtractWithPermutations) {
  Block a = random_block({2, 3}, 22);
  Block b = random_block({3, 2}, 23);
  Block c(BlockShape(std::vector<int>{2, 3}));
  block_add(c, std::vector<int>{0, 1}, a, std::vector<int>{0, 1}, b,
            std::vector<int>{1, 0}, /*subtract=*/false,
            /*accumulate=*/false);
  EXPECT_NEAR(c.at(std::vector<int>{1, 2}),
              a.at(std::vector<int>{1, 2}) + b.at(std::vector<int>{2, 1}),
              1e-12);
  block_add(c, std::vector<int>{0, 1}, a, std::vector<int>{0, 1}, b,
            std::vector<int>{1, 0}, /*subtract=*/true, /*accumulate=*/true);
  EXPECT_NEAR(c.at(std::vector<int>{1, 2}),
              2.0 * a.at(std::vector<int>{1, 2}), 1e-12);
}

// ---------------------------------------------------------------------
// Property test: block_contract (gather packing, SIMD micro-kernel, plan
// cache) against a naive index-loop reference, across randomized ranks,
// shuffled id orders, unequal extents, and both accumulate modes. This is
// the safety net for the contraction engine.

// Reference contraction: explicit loops over every destination element
// and every assignment of the contracted ids.
void naive_contract(Block& dst, std::span<const int> dst_ids, const Block& a,
                    std::span<const int> a_ids, const Block& b,
                    std::span<const int> b_ids, bool accumulate) {
  std::vector<int> common_ids, common_ext;
  for (std::size_t d = 0; d < a_ids.size(); ++d) {
    if (std::find(b_ids.begin(), b_ids.end(), a_ids[d]) != b_ids.end()) {
      common_ids.push_back(a_ids[d]);
      common_ext.push_back(a.shape().extent(static_cast<int>(d)));
    }
  }
  const auto index_for = [](std::span<const int> ids,
                            const std::map<int, int>& values) {
    std::vector<int> index;
    for (const int id : ids) index.push_back(values.at(id));
    return index;
  };

  std::map<int, int> values;
  std::vector<int> dst_counter(dst_ids.size(), 0);
  const std::size_t dst_total = dst.size();
  for (std::size_t out = 0; out < dst_total; ++out) {
    for (std::size_t d = 0; d < dst_ids.size(); ++d) {
      values[dst_ids[d]] = dst_counter[d];
    }
    double sum = 0.0;
    std::vector<int> k_counter(common_ids.size(), 0);
    std::size_t k_total = 1;
    for (const int e : common_ext) k_total *= static_cast<std::size_t>(e);
    for (std::size_t kk = 0; kk < k_total; ++kk) {
      for (std::size_t d = 0; d < common_ids.size(); ++d) {
        values[common_ids[d]] = k_counter[d];
      }
      sum += a.at(index_for(a_ids, values)) * b.at(index_for(b_ids, values));
      for (int d = static_cast<int>(common_ids.size()) - 1; d >= 0; --d) {
        const std::size_t ud = static_cast<std::size_t>(d);
        if (++k_counter[ud] < common_ext[ud]) break;
        k_counter[ud] = 0;
      }
    }
    const std::vector<int> dst_index = index_for(dst_ids, values);
    if (accumulate) {
      dst.at(dst_index) += sum;
    } else {
      dst.at(dst_index) = sum;
    }
    for (int d = static_cast<int>(dst_ids.size()) - 1; d >= 0; --d) {
      const std::size_t ud = static_cast<std::size_t>(d);
      if (++dst_counter[ud] < dst.shape().extent(d)) break;
      dst_counter[ud] = 0;
    }
  }
}

TEST(ContractPropertyTest, MatchesNaiveReferenceAcrossRandomCases) {
  constexpr int kCases = 250;
  constexpr double kRelTol = 1e-10;
  const std::vector<int> extent_choices = {1, 2, 3, 4, 5, 7};

  for (int t = 0; t < kCases; ++t) {
    std::mt19937 rng(static_cast<std::uint32_t>(1000 + t));
    const auto pick = [&rng](int lo, int hi) {
      return lo + static_cast<int>(rng() % static_cast<unsigned>(hi - lo + 1));
    };
    const int a_rank = pick(1, 4);
    const int b_rank = pick(1, 4);
    // Valid contracted-id counts: dst rank in 1..kMaxRank.
    std::vector<int> valid_c;
    for (int c = 0; c <= std::min(a_rank, b_rank); ++c) {
      const int dst_rank = a_rank + b_rank - 2 * c;
      if (dst_rank >= 1 && dst_rank <= blas::kMaxRank) valid_c.push_back(c);
    }
    ASSERT_FALSE(valid_c.empty());
    const int num_common =
        valid_c[static_cast<std::size_t>(pick(0, static_cast<int>(valid_c.size()) - 1))];

    // Distinct ids with random extents; id numbering shuffled so the axis
    // partition sees arbitrary orders.
    const int num_ids = a_rank + b_rank - num_common;
    std::vector<int> ids(static_cast<std::size_t>(num_ids));
    std::iota(ids.begin(), ids.end(), 10);
    std::shuffle(ids.begin(), ids.end(), rng);
    std::map<int, int> extent_of;
    for (const int id : ids) {
      extent_of[id] =
          extent_choices[rng() % extent_choices.size()];
    }
    const std::vector<int> common(ids.begin(), ids.begin() + num_common);
    std::vector<int> a_ids(common);
    std::vector<int> b_ids(common);
    std::vector<int> dst_ids;
    for (int i = num_common; i < num_ids; ++i) {
      if (i - num_common < a_rank - num_common) {
        a_ids.push_back(ids[static_cast<std::size_t>(i)]);
      } else {
        b_ids.push_back(ids[static_cast<std::size_t>(i)]);
      }
      dst_ids.push_back(ids[static_cast<std::size_t>(i)]);
    }
    std::shuffle(a_ids.begin(), a_ids.end(), rng);
    std::shuffle(b_ids.begin(), b_ids.end(), rng);
    std::shuffle(dst_ids.begin(), dst_ids.end(), rng);

    const auto extents_for = [&extent_of](const std::vector<int>& arr_ids) {
      std::vector<int> extents;
      for (const int id : arr_ids) extents.push_back(extent_of.at(id));
      return extents;
    };
    Block a = random_block(extents_for(a_ids),
                           static_cast<std::uint64_t>(2 * t + 1));
    Block b = random_block(extents_for(b_ids),
                           static_cast<std::uint64_t>(2 * t + 2));
    const bool accumulate = (t % 2) == 1;
    Block got = random_block(extents_for(dst_ids),
                             static_cast<std::uint64_t>(3 * t + 5));
    Block want = got.clone();

    block_contract(got, dst_ids, a, a_ids, b, b_ids, accumulate);
    naive_contract(want, dst_ids, a, a_ids, b, b_ids, accumulate);

    for (std::size_t i = 0; i < got.size(); ++i) {
      const double g = got.data()[i];
      const double w = want.data()[i];
      ASSERT_LE(std::abs(g - w), kRelTol * std::max(1.0, std::abs(w)))
          << "case " << t << " element " << i << ": got " << g << " want "
          << w;
    }
  }
}

TEST(ContractPropertyTest, PortableAndSimdKernelsAgree) {
  Block a = random_block({9, 7, 5}, 71);
  Block b = random_block({5, 9, 6}, 72);
  const std::vector<int> a_ids = {0, 1, 2};
  const std::vector<int> b_ids = {2, 0, 3};
  const std::vector<int> dst_ids = {3, 1};

  ASSERT_TRUE(blas::select_gemm_kernel("portable"));
  Block c_portable(BlockShape(std::vector<int>{6, 7}));
  block_contract(c_portable, dst_ids, a, a_ids, b, b_ids, false);

  if (blas::select_gemm_kernel("avx2")) {
    Block c_simd(BlockShape(std::vector<int>{6, 7}));
    block_contract(c_simd, dst_ids, a, a_ids, b, b_ids, false);
    for (std::size_t i = 0; i < c_simd.size(); ++i) {
      EXPECT_NEAR(c_simd.data()[i], c_portable.data()[i], 1e-12);
    }
  }
  ASSERT_TRUE(blas::select_gemm_kernel("auto"));
}

TEST(ContractPropertyTest, NoOperandPermuteCopies) {
  // Both operands need transposing relative to GEMM layout; the engine
  // must fold that into packing, never materialize a permuted copy.
  Block a = random_block({4, 6, 5}, 73);
  Block b = random_block({7, 6, 4}, 74);  // common ids 0,1 land strided
  Block c(BlockShape(std::vector<int>{5, 7}));
  block_contract(c, std::vector<int>{2, 3}, a, std::vector<int>{1, 0, 2}, b,
                 std::vector<int>{3, 0, 1}, false);
  EXPECT_EQ(contract_operand_permute_count(), 0u);
}

TEST(ContractPropertyTest, PlanCacheHitsOnRepeat) {
  // A shape/id combination no other test uses: first call misses, the
  // rest hit.
  Block a = random_block({3, 2, 7, 2}, 75);
  Block b = random_block({7, 3, 5, 2}, 76);
  Block c(BlockShape(std::vector<int>{2, 5}));
  const std::vector<int> dst_ids = {31, 33};  // free: 31 in a, 33 in b
  const std::vector<int> a_ids = {30, 31, 32, 34};
  const std::vector<int> b_ids = {32, 30, 33, 34};  // common: 30, 32, 34
  blas::reset_plan_cache_stats();
  for (int i = 0; i < 8; ++i) {
    block_contract(c, dst_ids, a, a_ids, b, b_ids, false);
  }
  const blas::PlanCacheStats stats = blas::plan_cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 7u);
}

// ---------------------------------------------------------------------
// Registry.

TEST(RegistryTest, RegisterLookupAndList) {
  auto& registry = SuperInstructionRegistry::global();
  bool called = false;
  registry.register_instruction("test_only_op",
                                [&](SuperInstructionContext&) {
                                  called = true;
                                });
  const SuperInstructionFn* fn = registry.lookup("test_only_op");
  ASSERT_NE(fn, nullptr);
  std::vector<ExecArgValue> args;
  const sial::ResolvedProgram program(sial::CompiledProgram{}, SipConfig{});
  SuperInstructionContext context(program, args, 0, 1);
  (*fn)(context);
  EXPECT_TRUE(called);
  EXPECT_EQ(registry.lookup("no_such_op"), nullptr);

  const auto names = registry.names();
  EXPECT_NE(std::find(names.begin(), names.end(), "test_only_op"),
            names.end());
}

TEST(RegistryTest, BuiltinsRegistered) {
  register_builtin_superinstructions();
  auto& registry = SuperInstructionRegistry::global();
  for (const char* name :
       {"fill_value", "fill_coords", "random_block", "block_nrm2",
        "block_asum", "block_max_abs", "print_block_norm"}) {
    EXPECT_NE(registry.lookup(name), nullptr) << name;
  }
}

}  // namespace
}  // namespace sia::sip
