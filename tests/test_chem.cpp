// Tests for the synthetic chemistry data and reference implementations.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

#include "chem/integrals.hpp"
#include "chem/reference.hpp"
#include "chem/system.hpp"

namespace sia::chem {
namespace {

TEST(SystemTest, PresetsHaveSensibleShapes) {
  for (const MolecularSystem& system :
       {luciferin(), water_cluster(), rdx(), hmx(), cytosine_oh(),
        diamond_nv()}) {
    EXPECT_GT(system.nocc, 0) << system.name;
    EXPECT_GT(system.nvirt(), system.nocc) << system.name;
  }
  EXPECT_EQ(diamond_nv().nbasis, 2944);  // stated in the paper's Fig. 6
}

TEST(OrbitalEnergyTest, OccupiedBelowVirtual) {
  const long nocc = 10;
  for (long p = 1; p <= nocc; ++p) {
    EXPECT_LT(orbital_energy(p, nocc), 0.0);
  }
  for (long p = nocc + 1; p <= 30; ++p) {
    EXPECT_GT(orbital_energy(p, nocc), 0.0);
  }
  // Monotone within each class.
  EXPECT_LT(orbital_energy(1, nocc), orbital_energy(2, nocc));
  EXPECT_LT(orbital_energy(11, nocc), orbital_energy(12, nocc));
}

TEST(IntegralTest, PermutationalSymmetry) {
  // (pq|rs) = (qp|rs) = (pq|sr) = (rs|pq).
  const double v = synthetic_integral(3, 7, 2, 9);
  EXPECT_DOUBLE_EQ(synthetic_integral(7, 3, 2, 9), v);
  EXPECT_DOUBLE_EQ(synthetic_integral(3, 7, 9, 2), v);
  EXPECT_DOUBLE_EQ(synthetic_integral(2, 9, 3, 7), v);
}

TEST(IntegralTest, DecaysOffDiagonal) {
  EXPECT_GT(synthetic_integral(5, 5, 5, 5),
            synthetic_integral(5, 9, 5, 5));
  EXPECT_GT(synthetic_integral(5, 9, 5, 5),
            synthetic_integral(5, 20, 5, 5));
  EXPECT_GT(synthetic_integral(2, 2, 2, 2),
            synthetic_integral(2, 2, 30, 30));
}

TEST(IntegralTest, CoreHamiltonianSymmetric) {
  EXPECT_DOUBLE_EQ(synthetic_core_h(3, 8), synthetic_core_h(8, 3));
  EXPECT_LT(synthetic_core_h(4, 4), 0.0);  // diagonal dominated, negative
}

TEST(IntegralTest, DensitySymmetricAndDecaying) {
  EXPECT_DOUBLE_EQ(synthetic_density(2, 6), synthetic_density(6, 2));
  EXPECT_GT(synthetic_density(5, 5), synthetic_density(5, 10));
}

TEST(DenominatorTest, OrientationIndependent) {
  const long nocc = 6;
  // (a,i,b,j) and (i,a,j,b) orders give the same denominator.
  const std::array<long, 4> aibj = {9, 2, 8, 3};
  const std::array<long, 4> iajb = {2, 9, 3, 8};
  EXPECT_DOUBLE_EQ(denominator_from_coords(aibj, nocc),
                   denominator_from_coords(iajb, nocc));
  EXPECT_DOUBLE_EQ(denominator_from_coords(iajb, nocc),
                   mp2_denominator(2, 9, 3, 8, nocc));
}

TEST(DenominatorTest, AlwaysNegativeForExcitations) {
  const long nocc = 6;
  for (long i = 1; i <= nocc; ++i) {
    for (long a = nocc + 1; a <= 20; ++a) {
      EXPECT_LT(mp2_denominator(i, a, i, a, nocc), 0.0);
    }
  }
}

TEST(ReferenceTest, Mp2EnergyIsNegative) {
  const double e2 = ref_mp2_energy(10, 4);
  EXPECT_LT(e2, 0.0);
  EXPECT_GT(e2, -10.0);  // sane magnitude
}

TEST(ReferenceTest, Mp2EnergyGrowsWithBasis) {
  // More virtuals -> more (negative) correlation energy.
  EXPECT_LT(ref_mp2_energy(14, 4), ref_mp2_energy(8, 4));
}

TEST(ReferenceTest, AmplitudeNormPositive) {
  EXPECT_GT(ref_mp2_amp_norm2(10, 4), 0.0);
}

TEST(ReferenceTest, CcdIterationsConverge) {
  // The amplitude norm change between consecutive iteration counts
  // shrinks (the toy CCD is contractive at this size).
  double n3 = 0.0, n4 = 0.0, n5 = 0.0;
  ref_ccd_energy(8, 4, 3, &n3);
  ref_ccd_energy(8, 4, 4, &n4);
  ref_ccd_energy(8, 4, 5, &n5);
  const double d34 = std::abs(n4 - n3);
  const double d45 = std::abs(n5 - n4);
  EXPECT_LT(d45, d34);
}

TEST(ReferenceTest, CcdZeroIterationsUsesT0) {
  // With 0 sweeps the energy is the MP2-like pair energy sum T0.V.
  double norm2 = 0.0;
  const double e0 = ref_ccd_energy(8, 4, 0, &norm2);
  EXPECT_LT(e0, 0.0);
  double want = 0.0;
  for (long i = 1; i <= 4; ++i) {
    for (long j = 1; j <= 4; ++j) {
      for (long a = 5; a <= 8; ++a) {
        for (long b = 5; b <= 8; ++b) {
          const double v = synthetic_integral(a, i, b, j);
          want += v * v / mp2_denominator(i, a, j, b, 4);
        }
      }
    }
  }
  EXPECT_NEAR(e0, want, 1e-12);
}

TEST(ReferenceTest, FockMatrixSymmetric) {
  const long n = 10;
  const std::vector<double> fock = ref_fock_matrix(n);
  for (long mu = 0; mu < n; ++mu) {
    for (long nu = 0; nu < n; ++nu) {
      EXPECT_NEAR(fock[static_cast<std::size_t>(mu * n + nu)],
                  fock[static_cast<std::size_t>(nu * n + mu)], 1e-12);
    }
  }
  EXPECT_GT(ref_fock_norm(n), 0.0);
}

TEST(ReferenceTest, ContractionChecksumDeterministic) {
  EXPECT_DOUBLE_EQ(ref_contraction_rnorm2(6, 3, 7.0),
                   ref_contraction_rnorm2(6, 3, 7.0));
  EXPECT_NE(ref_contraction_rnorm2(6, 3, 7.0),
            ref_contraction_rnorm2(6, 3, 8.0));
}

TEST(ChemSuperInstructionsTest, RegistrationIsIdempotent) {
  register_chem_superinstructions();
  register_chem_superinstructions();
  SUCCEED();
}

}  // namespace
}  // namespace sia::chem
