// Tests for the intra-worker dataflow executor: hazard ordering
// (RAW/WAR/WAW), deterministic program-order retirement, pending-operand
// parking, error attribution, cancellation, and — end to end — the
// bit-identity guarantee: any worker_threads setting must reproduce the
// serial interpreter's results exactly, not just approximately.
//
// The unit tests deliberately use *plain* (non-atomic) shared variables
// guarded only by the executor's hazard edges: under ThreadSanitizer
// (cmake -DSIA_TSAN=ON; ctest -L tsan) that proves the executor
// establishes real happens-before ordering, not just lucky timing.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "block/block.hpp"
#include "block/block_pool.hpp"
#include "chem/integrals.hpp"
#include "chem/programs.hpp"
#include "chem/reference.hpp"
#include "common/config.hpp"
#include "common/error.hpp"
#include "sip/executor.hpp"
#include "sip/launch.hpp"

namespace sia::sip {
namespace {

BlockId bid(int array, int seg) {
  const std::array<int, 1> segs{seg};
  return BlockId(array, std::span<const int>(segs));
}

void nap(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

// Interpreter-thread service loop: pump until the window drains.
void drive(DataflowExecutor& executor, int timeout_ms = 20000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (!executor.idle()) {
    executor.pump();
    if (executor.idle()) break;
    executor.wait_progress(5);
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "executor did not drain in time";
  }
}

TEST(DataflowExecutorTest, RawHazardOrdersReadBehindWrite) {
  DataflowExecutor executor(4, 64);
  int value = 0;       // written by the producer, read by the consumer
  int observed = -1;

  DataflowExecutor::Entry writer;
  writer.writes = {bid(0, 1)};
  writer.execute = [&] {
    nap(30);  // give a broken executor every chance to run the reader early
    value = 42;
  };
  executor.enqueue(std::move(writer));

  DataflowExecutor::Entry reader;
  reader.reads = {bid(0, 1)};
  reader.execute = [&] { observed = value; };
  executor.enqueue(std::move(reader));

  drive(executor);
  EXPECT_EQ(observed, 42);
  EXPECT_EQ(executor.stats().entries_retired, 2);
  EXPECT_GE(executor.stats().hazard_stalls, 1);
}

TEST(DataflowExecutorTest, WarHazardHoldsWriterForEarlierReader) {
  DataflowExecutor executor(4, 64);
  int value = 1;
  int observed = -1;

  DataflowExecutor::Entry reader;
  reader.reads = {bid(0, 2)};
  reader.execute = [&] {
    nap(30);
    observed = value;  // must see the pre-write value
  };
  executor.enqueue(std::move(reader));

  DataflowExecutor::Entry writer;
  writer.writes = {bid(0, 2)};
  writer.execute = [&] { value = 2; };
  executor.enqueue(std::move(writer));

  drive(executor);
  EXPECT_EQ(observed, 1);
  EXPECT_EQ(value, 2);
}

TEST(DataflowExecutorTest, WawHazardSerializesWriters) {
  DataflowExecutor executor(4, 64);
  int value = 0;

  DataflowExecutor::Entry first;
  first.writes = {bid(0, 3)};
  first.execute = [&] {
    nap(30);
    value = 10;
  };
  executor.enqueue(std::move(first));

  DataflowExecutor::Entry second;
  second.writes = {bid(0, 3)};
  second.execute = [&] { value = 20; };
  executor.enqueue(std::move(second));

  drive(executor);
  EXPECT_EQ(value, 20);  // program order wins, not completion luck
}

TEST(DataflowExecutorTest, IndependentEntriesRunConcurrently) {
  DataflowExecutor executor(2, 64);
  // Each entry waits (bounded) for the other: only true out-of-order
  // issue to two pool threads lets both finish.
  std::atomic<int> arrived{0};
  bool saw_peer[2] = {false, false};

  for (int i = 0; i < 2; ++i) {
    DataflowExecutor::Entry entry;
    entry.writes = {bid(0, 10 + i)};  // disjoint: no hazard between them
    entry.execute = [&, i] {
      arrived.fetch_add(1);
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::seconds(10);
      while (arrived.load() < 2 &&
             std::chrono::steady_clock::now() < deadline) {
        std::this_thread::yield();
      }
      saw_peer[i] = arrived.load() == 2;
    };
    executor.enqueue(std::move(entry));
  }

  drive(executor, 30000);
  EXPECT_TRUE(saw_peer[0]);
  EXPECT_TRUE(saw_peer[1]);
}

TEST(DataflowExecutorTest, RenamedWriteSkipsFalseWawButKeepsRaw) {
  DataflowExecutor executor(2, 64);
  const BlockId key = bid(0, 7);
  // A plain-writes `key`; B renamed-writes it (fresh storage). Without
  // renaming B would WAW-chain behind A; with it they run concurrently —
  // each waits (bounded) for the other, so serialization would fail the
  // saw_peer checks. C reads `key` and must still RAW-chain onto B: the
  // plain int it copies is only published if the executor establishes
  // the ordering (TSAN-checked).
  std::atomic<int> arrived{0};
  bool saw_peer[2] = {false, false};
  int renamed_value = 0;  // plain on purpose
  int seen_by_reader = 0;

  for (int i = 0; i < 2; ++i) {
    DataflowExecutor::Entry entry;
    if (i == 0) {
      entry.writes = {key};
    } else {
      entry.renamed_writes = {key};
    }
    entry.execute = [&, i] {
      arrived.fetch_add(1);
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(10);
      while (arrived.load() < 2 &&
             std::chrono::steady_clock::now() < deadline) {
        std::this_thread::yield();
      }
      saw_peer[i] = arrived.load() == 2;
      if (i == 1) renamed_value = 42;
    };
    executor.enqueue(std::move(entry));
  }
  DataflowExecutor::Entry reader;
  reader.reads = {key};
  reader.execute = [&] { seen_by_reader = renamed_value; };
  executor.enqueue(std::move(reader));

  drive(executor, 30000);
  EXPECT_TRUE(saw_peer[0]);
  EXPECT_TRUE(saw_peer[1]);
  EXPECT_EQ(seen_by_reader, 42);
}

TEST(DataflowExecutorTest, RetirementFollowsProgramOrder) {
  DataflowExecutor executor(4, 64);
  constexpr int kEntries = 16;
  std::vector<int> retire_order;  // retire runs on this thread: no lock

  for (int i = 0; i < kEntries; ++i) {
    DataflowExecutor::Entry entry;
    entry.writes = {bid(0, 100 + i)};  // all independent
    entry.execute = [i] { nap((kEntries - i) % 5); };  // finish out of order
    entry.retire = [&retire_order, i] { retire_order.push_back(i); };
    executor.enqueue(std::move(entry));
  }

  drive(executor);
  ASSERT_EQ(retire_order.size(), static_cast<std::size_t>(kEntries));
  for (int i = 0; i < kEntries; ++i) EXPECT_EQ(retire_order[i], i);
}

TEST(DataflowExecutorTest, RetireOnlyEntryWaitsForProgramOrder) {
  DataflowExecutor executor(2, 64);
  std::vector<int> retire_order;

  DataflowExecutor::Entry compute;
  compute.writes = {bid(0, 1)};
  compute.execute = [] { nap(30); };
  compute.retire = [&] { retire_order.push_back(0); };
  executor.enqueue(std::move(compute));

  // No execute closure: models a deferred get/put send. It is "done"
  // immediately but must still retire behind the slow compute entry.
  DataflowExecutor::Entry send;
  send.retire = [&] { retire_order.push_back(1); };
  executor.enqueue(std::move(send));

  drive(executor);
  ASSERT_EQ(retire_order.size(), 2u);
  EXPECT_EQ(retire_order[0], 0);
  EXPECT_EQ(retire_order[1], 1);
}

TEST(DataflowExecutorTest, PendingOperandParksEntryUntilResolved) {
  DataflowExecutor executor(2, 64);
  BlockPool pool;
  const std::array<int, 1> extents{4};
  auto block = std::make_shared<Block>(BlockShape(std::span<const int>(extents)),
                                       pool.allocate(4));
  block->data()[0] = 3.5;

  bool released = false;  // touched only on this (interpreter) thread
  int resolve_calls = 0;
  auto op = std::make_shared<BlockPtr>();
  double seen = 0.0;

  DataflowExecutor::Entry entry;
  entry.reads = {bid(0, 7)};
  DataflowExecutor::PendingOperand pending;
  pending.id = bid(0, 7);
  pending.resolve = [&, block]() -> BlockPtr {
    ++resolve_calls;
    return released ? block : nullptr;
  };
  pending.deposit = [op](BlockPtr b) { *op = std::move(b); };
  entry.pending_operands.push_back(std::move(pending));
  entry.execute = [&, op] { seen = (*op)->data()[0]; };
  executor.enqueue(std::move(entry));

  // The fetch has not "arrived": pumping must re-poll, not execute.
  executor.pump();
  executor.pump();
  EXPECT_FALSE(executor.idle());
  EXPECT_EQ(seen, 0.0);
  EXPECT_GE(resolve_calls, 2);

  released = true;
  drive(executor);
  EXPECT_EQ(seen, 3.5);
  EXPECT_GE(executor.stats().operand_stalls, 1);
}

TEST(DataflowExecutorTest, ExecuteErrorRethrownAtRetireInProgramOrder) {
  DataflowExecutor executor(2, 64);
  bool first_retired = false;

  DataflowExecutor::Entry ok;
  ok.writes = {bid(0, 1)};
  ok.execute = [] { nap(10); };
  ok.retire = [&] { first_retired = true; };
  executor.enqueue(std::move(ok));

  DataflowExecutor::Entry bad;
  bad.writes = {bid(0, 2)};
  bad.pc = 7;
  bad.execute = [] { throw RuntimeError("injected executor failure"); };
  executor.enqueue(std::move(bad));

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(20);
  bool threw = false;
  while (!threw) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
    try {
      executor.pump();
      if (executor.idle()) break;
      executor.wait_progress(5);
    } catch (const RuntimeError& error) {
      threw = true;
      EXPECT_NE(std::string(error.what()).find("injected executor failure"),
                std::string::npos);
    }
  }
  EXPECT_TRUE(threw);
  EXPECT_TRUE(first_retired);  // the healthy entry retired first
  EXPECT_EQ(executor.last_error_pc(), 7);
  executor.cancel();
}

TEST(DataflowExecutorTest, OperandResolutionErrorIsAttributed) {
  DataflowExecutor executor(1, 64);
  DataflowExecutor::Entry entry;
  entry.reads = {bid(0, 9)};
  entry.pc = 12;
  DataflowExecutor::PendingOperand pending;
  pending.id = bid(0, 9);
  pending.resolve = []() -> BlockPtr {
    throw RuntimeError("get: no such block");
  };
  pending.deposit = [](BlockPtr) {};
  entry.pending_operands.push_back(std::move(pending));
  entry.execute = [] { FAIL() << "must not execute"; };
  executor.enqueue(std::move(entry));

  EXPECT_THROW(executor.pump(), RuntimeError);
  EXPECT_EQ(executor.last_error_pc(), 12);
  executor.cancel();
}

TEST(DataflowExecutorTest, CancelDropsUnstartedEntries) {
  DataflowExecutor executor(1, 64);
  bool tail_executed = false;
  bool tail_retired = false;

  DataflowExecutor::Entry slow;
  slow.writes = {bid(0, 1)};
  slow.execute = [] { nap(40); };
  executor.enqueue(std::move(slow));

  DataflowExecutor::Entry tail;  // single thread: cannot have started
  tail.writes = {bid(0, 1)};     // and WAW-blocked behind `slow` anyway
  tail.execute = [&] { tail_executed = true; };
  tail.retire = [&] { tail_retired = true; };
  executor.enqueue(std::move(tail));

  executor.cancel();
  EXPECT_TRUE(executor.idle());
  EXPECT_FALSE(tail_executed);
  EXPECT_FALSE(tail_retired);
  EXPECT_FALSE(executor.writes_block(bid(0, 1)));
}

TEST(DataflowExecutorTest, WindowLimitAndLiveWriteTracking) {
  DataflowExecutor executor(2, 2);
  EXPECT_FALSE(executor.window_full());
  EXPECT_FALSE(executor.writes_block(bid(0, 1)));

  for (int i = 0; i < 2; ++i) {
    DataflowExecutor::Entry entry;
    entry.writes = {bid(0, 1)};
    entry.execute = [] { nap(20); };
    executor.enqueue(std::move(entry));
  }
  EXPECT_TRUE(executor.window_full());
  EXPECT_TRUE(executor.writes_block(bid(0, 1)));
  EXPECT_EQ(executor.window_size(), 2u);

  drive(executor);
  EXPECT_FALSE(executor.window_full());
  EXPECT_FALSE(executor.writes_block(bid(0, 1)));
  EXPECT_EQ(executor.stats().window_peak, 2);
  EXPECT_EQ(executor.stats().tasks_executed, 2);
}

// ---------------------------------------------------------------------
// End-to-end bit-identity: the acceptance criterion for the whole
// feature. Results must be *exactly* equal (EXPECT_EQ on doubles, not
// EXPECT_NEAR): program-order retirement plus hazard-serialized
// accumulates make the threaded schedule arithmetic-identical to the
// serial interpreter *for the same pardo chunk assignment*. Guided
// self-scheduling hands chunks out in request-arrival order, so with
// several workers the assignment (and hence the grouping of the
// floating-point collective sums) is timing-dependent with or without
// the executor. The strict tests therefore run one worker — where the
// whole schedule is deterministic — and a separate multi-worker test
// checks the threaded runtime against the chemistry references at the
// integration suite's tolerances.

SipConfig chem_config() {
  chem::register_chem_superinstructions();
  SipConfig config;
  config.workers = 3;
  config.io_servers = 1;
  config.default_segment = 4;
  config.constants = {{"norb", 8}, {"nocc", 4}, {"maxiter", 3}};
  return config;
}

SipConfig single_worker_config() {
  SipConfig config = chem_config();
  config.workers = 1;
  return config;
}

std::map<std::string, double> run_scalars(const SipConfig& config,
                                          const std::string& source) {
  Sip sip(config);
  return sip.run_source(source).scalars;
}

// Compares the programs' collective output scalars for *exact* equality.
// Worker-local partials (esum, rlocal, ...) are excluded: which pardo
// chunks worker 0 happens to execute is demand-scheduled and therefore
// timing-dependent even without the executor; only the collective sums
// are defined program results — and those must not change by one ulp.
void expect_bit_identical(const std::map<std::string, double>& base,
                          const std::map<std::string, double>& got,
                          const std::vector<std::string>& outputs,
                          const std::string& label) {
  for (const std::string& name : outputs) {
    const auto expected = base.find(name);
    const auto it = got.find(name);
    ASSERT_NE(expected, base.end()) << label << ": missing scalar " << name;
    ASSERT_NE(it, got.end()) << label << ": missing scalar " << name;
    EXPECT_EQ(it->second, expected->second) << label << ": scalar " << name;
  }
}

TEST(ExecutorIntegrationTest, Mp2BitIdenticalAcrossThreadCounts) {
  SipConfig config = single_worker_config();
  config.worker_threads = 0;
  const auto base = run_scalars(config, chem::mp2_energy_source());
  for (const int threads : {1, 2, 4}) {
    config.worker_threads = threads;
    expect_bit_identical(base,
                         run_scalars(config, chem::mp2_energy_source()),
                         {"e2"},
                         "mp2 worker_threads=" + std::to_string(threads));
  }
}

TEST(ExecutorIntegrationTest, CcdBitIdenticalThreadedVsSerial) {
  SipConfig config = single_worker_config();
  config.worker_threads = 0;
  const auto base = run_scalars(config, chem::ccd_energy_source());
  config.worker_threads = 3;
  expect_bit_identical(base, run_scalars(config, chem::ccd_energy_source()),
                       {"energy", "rnorm2"}, "ccd worker_threads=3");
}

TEST(ExecutorIntegrationTest, ServedMp2BitIdenticalThreadedVsSerial) {
  SipConfig config = single_worker_config();
  config.worker_threads = 0;
  const auto base = run_scalars(config, chem::mp2_served_source());
  config.worker_threads = 2;
  expect_bit_identical(base, run_scalars(config, chem::mp2_served_source()),
                       {"e2", "tnorm2"}, "served mp2 worker_threads=2");
}

TEST(ExecutorIntegrationTest, CommStormBitIdenticalWithCoalescing) {
  SipConfig config = single_worker_config();
  config.coalesce_puts = true;
  config.worker_threads = 0;
  const auto base = run_scalars(config, chem::comm_storm_source());
  config.worker_threads = 2;
  expect_bit_identical(base, run_scalars(config, chem::comm_storm_source()),
                       {"cnorm2"}, "comm_storm worker_threads=2 coalescing");
}

TEST(ExecutorIntegrationTest, TinyWindowStillBitIdentical) {
  // ccd keeps real get/contract/accumulate/put traffic in the window;
  // window_limit=2 puts constant back-pressure on the scan-ahead.
  SipConfig config = single_worker_config();
  config.worker_threads = 0;
  const auto base = run_scalars(config, chem::ccd_energy_source());
  config.worker_threads = 2;
  config.window_limit = 2;
  expect_bit_identical(base, run_scalars(config, chem::ccd_energy_source()),
                       {"energy", "rnorm2"}, "ccd window_limit=2");
}

TEST(ExecutorIntegrationTest, RandomizedSegmentSweepBitIdentical) {
  // Vary the block grid so hazard patterns (partial tail segments,
  // accumulate-chain lengths, get/contract overlap) differ per run.
  // comm_storm's do-k loop over get/contract/put+= is the densest
  // window traffic of the chem suite; segment 3 leaves a tail segment
  // of 2 against norb=8.
  for (const int segment : {2, 3, 4}) {
    SipConfig config = single_worker_config();
    config.default_segment = segment;
    config.worker_threads = 0;
    const auto base = run_scalars(config, chem::comm_storm_source());
    for (const int threads : {2, 4}) {
      config.worker_threads = threads;
      expect_bit_identical(
          base, run_scalars(config, chem::comm_storm_source()), {"cnorm2"},
          "segment=" + std::to_string(segment) +
              " threads=" + std::to_string(threads));
    }
  }
}

TEST(ExecutorIntegrationTest, MultiWorkerThreadedMatchesReference) {
  // Three workers, each with a two-thread window: the distributed puts,
  // gets, and coalesced accumulates must still reproduce the dense
  // references at the integration suite's tolerances (exactness across
  // worker counts is not defined — see the note above).
  SipConfig config = chem_config();
  config.worker_threads = 2;
  {
    Sip sip(config);
    const RunResult result = sip.run_source(chem::mp2_energy_source());
    EXPECT_NEAR(result.scalar("e2"), chem::ref_mp2_energy(8, 4), 1e-12);
  }
  {
    Sip sip(config);
    const RunResult result = sip.run_source(chem::ccd_energy_source());
    double norm2 = 0.0;
    const double energy = chem::ref_ccd_energy(8, 4, 3, &norm2);
    EXPECT_NEAR(result.scalar("energy"), energy, 1e-11);
    EXPECT_NEAR(result.scalar("rnorm2"), norm2, 1e-11);
  }
}

TEST(ExecutorIntegrationTest, ProfileReportsExecutorCounters) {
  // comm_storm, not mp2: mp2's body is pure `execute` super instructions
  // (which drain the window), so only block-op traffic proves the
  // counters flow from the executor through launch aggregation.
  SipConfig config = single_worker_config();
  config.worker_threads = 2;
  Sip sip(config);
  const RunResult result = sip.run_source(chem::comm_storm_source());
  const ProfileReport::Executor& agg = result.profile.executor;
  EXPECT_EQ(agg.threads, 2);
  EXPECT_GT(agg.entries_retired, 0);
  EXPECT_GT(agg.tasks_executed, 0);
  EXPECT_GT(agg.drains, 0);  // pardo boundaries and barriers drain
  EXPECT_GE(agg.window_peak, 1);
  EXPECT_NE(result.profile.to_string().find("dataflow executor"),
            std::string::npos);

  config.worker_threads = 0;
  Sip serial(config);
  const RunResult base = serial.run_source(chem::comm_storm_source());
  EXPECT_FALSE(base.profile.executor.any());
  EXPECT_EQ(base.profile.to_string().find("dataflow executor"),
            std::string::npos);
}

TEST(ExecutorIntegrationTest, RuntimeErrorKeepsLineAttributionThreaded) {
  SipConfig config = chem_config();
  config.worker_threads = 2;
  Sip sip(config);
  try {
    sip.run_source(R"(sial bad_get
moindex i = 1, norb
distributed d(i)
temp u(i)
scalar x
pardo i
  get d(i)
  u(i) = d(i)
  x += u(i) * u(i)
endpardo i
endsial
)");
    FAIL() << "expected a runtime error for get of a never-written block";
  } catch (const Error& error) {
    const std::string what = error.what();
    // The deferred failure must still name the faulting SIAL source
    // line, not wherever the window happened to drain.
    EXPECT_NE(what.find("never been put"), std::string::npos) << what;
    EXPECT_NE(what.find("line"), std::string::npos) << what;
  }
}

TEST(ExecutorConfigTest, WorkerThreadKnobValidation) {
  SipConfig config;
  config.worker_threads = -2;
  EXPECT_THROW(config.validate(), Error);
  config.worker_threads = -1;
  EXPECT_GE(config.effective_worker_threads(), 0);
  config.worker_threads = 3;
  EXPECT_EQ(config.effective_worker_threads(), 3);
  config.window_limit = 0;
  EXPECT_THROW(config.validate(), Error);
}

// ---------------------------------------------------------------------
// Sharded block pool under the executor's allocation pattern.

TEST(ShardedPoolTest, StealDrainsWholeClassFromOneThread) {
  // 20 slots are dealt round-robin over 8 shards; one thread's home
  // shard holds at most 3, so draining all 20 exercises stealing.
  BlockPool pool({{16, 20}}, /*allow_heap_fallback=*/false);
  std::vector<PoolBuffer> held;
  for (int i = 0; i < 20; ++i) {
    held.push_back(pool.allocate(16));
    ASSERT_TRUE(held.back().valid());
  }
  EXPECT_EQ(pool.stats().pool_allocs, 20u);
  EXPECT_EQ(pool.free_slots_for(16), 0u);
  EXPECT_THROW(pool.allocate(16), RuntimeError);  // true exhaustion
  held.clear();
  EXPECT_EQ(pool.free_slots_for(16), 20u);
}

TEST(ShardedPoolTest, HeapFallbackCountsWhenExhausted) {
  BlockPool pool({{8, 2}}, /*allow_heap_fallback=*/true);
  const PoolBuffer a = pool.allocate(8);
  const PoolBuffer b = pool.allocate(8);
  const PoolBuffer c = pool.allocate(8);  // class drained: heap
  EXPECT_TRUE(c.valid());
  EXPECT_EQ(pool.stats().heap_fallbacks, 1u);
  EXPECT_EQ(pool.stats().pool_allocs, 2u);
}

TEST(ShardedPoolTest, CrossThreadReleaseReturnsSlot) {
  BlockPool pool({{4, 1}}, /*allow_heap_fallback=*/false);
  PoolBuffer buffer = pool.allocate(4);
  std::thread releaser([&] { PoolBuffer moved = std::move(buffer); });
  releaser.join();
  EXPECT_EQ(pool.free_slots_for(4), 1u);
  EXPECT_TRUE(pool.allocate(4).valid());  // slot usable from any shard
}

TEST(ShardedPoolTest, ConcurrentChurnBalances) {
  BlockPool pool({{32, 64}}, /*allow_heap_fallback=*/true);
  constexpr int kThreads = 4;
  constexpr int kIters = 300;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, t] {
      std::vector<PoolBuffer> live;
      for (int i = 0; i < kIters; ++i) {
        live.push_back(pool.allocate(1 + (i * 7 + t * 13) % 32));
        if (live.size() > 8) live.erase(live.begin());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const BlockPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.in_use_doubles, 0u);
  EXPECT_GT(stats.pool_allocs, 0u);
  EXPECT_GT(stats.peak_in_use_doubles, 0u);
}

}  // namespace
}  // namespace sia::sip
