// Tests for the Global-Arrays-style baseline library.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "common/error.hpp"
#include "ga/ga.hpp"

namespace sia::ga {
namespace {

TEST(GlobalArrayTest, SlabDistributionCoversRows) {
  GlobalArray array(3, std::vector<long>{10, 4});
  long covered = 0;
  for (int r = 0; r < 3; ++r) {
    long lo = 0, hi = 0;
    array.distribution(r, &lo, &hi);
    covered += hi - lo + 1;
    for (long row = lo; row <= hi; ++row) {
      EXPECT_EQ(array.owner_of_row(row), r);
    }
  }
  EXPECT_EQ(covered, 10);
}

TEST(GlobalArrayTest, MoreRanksThanRows) {
  GlobalArray array(8, std::vector<long>{3});
  long lo = 0, hi = 0;
  array.distribution(7, &lo, &hi);
  EXPECT_GT(lo, hi);  // empty slab
}

TEST(GlobalArrayTest, PutGetRoundTripWholeArray) {
  GlobalArray array(3, std::vector<long>{6, 5});
  std::vector<double> data(30);
  std::iota(data.begin(), data.end(), 0.0);
  const std::vector<long> lo = {0, 0}, hi = {5, 4};
  array.put(0, lo, hi, data.data());
  std::vector<double> back(30, -1.0);
  array.get(1, lo, hi, back.data());
  EXPECT_EQ(back, data);
}

TEST(GlobalArrayTest, RectangularSectionCrossingSlabs) {
  GlobalArray array(2, std::vector<long>{8, 8});
  array.fill(1.0);
  // Section rows 2..5 cross the slab boundary at row 4.
  const std::vector<long> lo = {2, 3}, hi = {5, 6};
  std::vector<double> section(4 * 4, 0.0);
  array.get(0, lo, hi, section.data());
  for (const double v : section) EXPECT_EQ(v, 1.0);

  for (double& v : section) v = 2.0;
  array.put(0, lo, hi, section.data());
  // Only the section changed.
  std::vector<double> whole(64);
  array.get(0, std::vector<long>{0, 0}, std::vector<long>{7, 7},
            whole.data());
  double sum = 0.0;
  for (const double v : whole) sum += v;
  EXPECT_DOUBLE_EQ(sum, 64.0 + 16.0);
}

TEST(GlobalArrayTest, AccumulateWithAlpha) {
  GlobalArray array(2, std::vector<long>{4, 4});
  array.fill(1.0);
  std::vector<double> ones(4, 1.0);
  const std::vector<long> lo = {1, 0}, hi = {1, 3};
  array.acc(0, lo, hi, ones.data(), 3.0);
  std::vector<double> row(4);
  array.get(0, lo, hi, row.data());
  for (const double v : row) EXPECT_DOUBLE_EQ(v, 4.0);
}

TEST(GlobalArrayTest, Rank3Sections) {
  GlobalArray array(2, std::vector<long>{4, 3, 2});
  std::vector<double> data(4 * 3 * 2);
  std::iota(data.begin(), data.end(), 0.0);
  array.put(0, std::vector<long>{0, 0, 0}, std::vector<long>{3, 2, 1},
            data.data());
  // Middle sub-box.
  std::vector<double> box(2 * 2 * 1);
  array.get(1, std::vector<long>{1, 1, 0}, std::vector<long>{2, 2, 0},
            box.data());
  // Element (1,1,0) of a 4x3x2 row-major array is at 1*6+1*2+0 = 8.
  EXPECT_DOUBLE_EQ(box[0], 8.0);
  EXPECT_DOUBLE_EQ(box[1], 10.0);  // (1,2,0)
  EXPECT_DOUBLE_EQ(box[2], 14.0);  // (2,1,0)
}

TEST(GlobalArrayTest, BadSectionBoundsThrow) {
  GlobalArray array(2, std::vector<long>{4, 4});
  std::vector<double> buf(16);
  EXPECT_THROW(array.get(0, std::vector<long>{0, 0},
                         std::vector<long>{4, 3}, buf.data()),
               Error);
  EXPECT_THROW(array.get(0, std::vector<long>{2, 0},
                         std::vector<long>{1, 3}, buf.data()),
               Error);
}

TEST(GlobalArrayTest, NbGetHandleCompletes) {
  GlobalArray array(2, std::vector<long>{4, 4});
  array.fill(5.0);
  std::vector<double> buf(4);
  auto handle = array.nbget(0, std::vector<long>{0, 0},
                            std::vector<long>{0, 3}, buf.data());
  array.nbwait(handle);
  EXPECT_TRUE(handle.done);
  for (const double v : buf) EXPECT_DOUBLE_EQ(v, 5.0);
}

TEST(GlobalArrayTest, StatsSplitLocalRemote) {
  GlobalArray array(2, std::vector<long>{4, 4});
  array.fill(0.0);
  std::vector<double> buf(16);
  // Rank 0 reads the whole array: half local, half remote.
  array.get(0, std::vector<long>{0, 0}, std::vector<long>{3, 3},
            buf.data());
  const GaStats stats = array.stats(0);
  EXPECT_EQ(stats.gets, 1);
  EXPECT_EQ(stats.local_elements, 8);
  EXPECT_EQ(stats.remote_elements, 8);
}

TEST(GlobalArrayTest, LocalBytesMatchSlab) {
  GlobalArray array(4, std::vector<long>{8, 10});
  EXPECT_EQ(array.local_bytes(0), 2u * 10u * sizeof(double));
}

TEST(GaTeamTest, ParallelRunsEveryRank) {
  GaTeam team(6);
  std::vector<int> hit(6, 0);
  team.parallel([&](int rank) { hit[static_cast<std::size_t>(rank)] = 1; });
  for (const int h : hit) EXPECT_EQ(h, 1);
}

TEST(GaTeamTest, SyncActsAsBarrier) {
  GaTeam team(4);
  std::atomic<int> phase1{0};
  team.parallel([&](int) {
    phase1.fetch_add(1);
    team.sync();
    EXPECT_EQ(phase1.load(), 4);
  });
}

TEST(GaTeamTest, ExceptionPropagates) {
  GaTeam team(3);
  EXPECT_THROW(team.parallel([&](int rank) {
    if (rank == 1) throw Error("worker 1 exploded");
  }),
               Error);
}

TEST(GaTeamTest, ConcurrentAccumulatesAreAtomic) {
  // Every rank accumulates 1.0 into the SAME section; the total must be
  // exactly the rank count (GA's atomic acc semantics).
  constexpr int kRanks = 6;
  GlobalArray array(kRanks, std::vector<long>{4, 4});
  array.fill(0.0);
  GaTeam team(kRanks);
  team.parallel([&](int rank) {
    std::vector<double> ones(16, 1.0);
    for (int repeat = 0; repeat < 50; ++repeat) {
      array.acc(rank, std::vector<long>{0, 0}, std::vector<long>{3, 3},
                ones.data(), 1.0);
    }
  });
  std::vector<double> out(16);
  array.get(0, std::vector<long>{0, 0}, std::vector<long>{3, 3},
            out.data());
  for (const double v : out) {
    EXPECT_DOUBLE_EQ(v, kRanks * 50.0);
  }
}

TEST(GaIntegrationTest, BlockedMatmulWithGa) {
  // A small GA-style program: C = A*B with rigid slab layout, the style
  // of computation the paper contrasts SIAL against.
  constexpr long kN = 12;
  constexpr int kRanks = 3;
  GlobalArray a(kRanks, std::vector<long>{kN, kN});
  GlobalArray b(kRanks, std::vector<long>{kN, kN});
  GlobalArray c(kRanks, std::vector<long>{kN, kN});
  // Deterministic fill.
  for (long i = 0; i < kN; ++i) {
    std::vector<double> row(kN), col(kN);
    for (long j = 0; j < kN; ++j) {
      row[static_cast<std::size_t>(j)] = static_cast<double>(i + j);
      col[static_cast<std::size_t>(j)] = static_cast<double>(i - j);
    }
    a.put(0, std::vector<long>{i, 0}, std::vector<long>{i, kN - 1},
          row.data());
    b.put(0, std::vector<long>{i, 0}, std::vector<long>{i, kN - 1},
          col.data());
  }

  GaTeam team(kRanks);
  team.parallel([&](int rank) {
    long lo = 0, hi = 0;
    c.distribution(rank, &lo, &hi);
    std::vector<double> arow(kN), brow(kN * kN), crow(kN);
    // Each rank computes its slab of C; B fetched whole (manual buffering
    // — exactly the bookkeeping SIAL hides).
    b.get(rank, std::vector<long>{0, 0}, std::vector<long>{kN - 1, kN - 1},
          brow.data());
    for (long i = lo; i <= hi; ++i) {
      a.get(rank, std::vector<long>{i, 0}, std::vector<long>{i, kN - 1},
            arow.data());
      for (long j = 0; j < kN; ++j) {
        double sum = 0.0;
        for (long k = 0; k < kN; ++k) {
          sum += arow[static_cast<std::size_t>(k)] *
                 brow[static_cast<std::size_t>(k * kN + j)];
        }
        crow[static_cast<std::size_t>(j)] = sum;
      }
      c.put(rank, std::vector<long>{i, 0}, std::vector<long>{i, kN - 1},
            crow.data());
    }
    team.sync();
  });

  // Verify one element against the closed form.
  std::vector<double> value(1);
  c.get(0, std::vector<long>{2, 3}, std::vector<long>{2, 3}, value.data());
  double want = 0.0;
  for (long k = 0; k < kN; ++k) {
    want += static_cast<double>(2 + k) * static_cast<double>(k - 3);
  }
  EXPECT_DOUBLE_EQ(value[0], want);
}

}  // namespace
}  // namespace sia::ga
