// Deeper interpreter scenarios: rank-6 intermediates (the paper's §IV-E
// motivation for subindices), nested procedures, execute over
// distributed operands, and tail-segment arithmetic.
#include <gtest/gtest.h>

#include <cmath>

#include "chem/integrals.hpp"
#include "sip/launch.hpp"

namespace sia::sip {
namespace {

SipConfig more_config(int workers = 2, int segment = 2) {
  chem::register_chem_superinstructions();
  SipConfig config;
  config.workers = workers;
  config.io_servers = 0;
  config.default_segment = segment;
  config.subsegments_per_segment = 2;
  config.constants = {{"n", 4}, {"big", 10}};
  return config;
}

RunResult run(const std::string& body, SipConfig config = more_config()) {
  Sip sip(config);
  return sip.run_source("sial test\n" + body + "\nendsial\n");
}

TEST(SipMoreTest, Rank6ContractionFromTwoRank4s) {
  // The paper's A(a,b,c,k)*B(k,l,m,n) -> C(a,b,c,l,m,n) case (§IV-E).
  const RunResult result = run(R"(
moindex a = 1, n
moindex b = 1, n
moindex c = 1, n
moindex k = 1, n
moindex l = 1, n
moindex m = 1, n
moindex q = 1, n
temp ta(a,b,c,k)
temp tb(k,l,m,q)
temp tc(a,b,c,l,m,q)
scalar s
scalar total
pardo a, b
  do c
    do l
      do m
        do q
          tc(a,b,c,l,m,q) = 0.0
          do k
            execute fill_value ta(a,b,c,k) 1.0
            execute fill_value tb(k,l,m,q) 1.0
            tc(a,b,c,l,m,q) += ta(a,b,c,k) * tb(k,l,m,q)
          enddo k
          s += tc(a,b,c,l,m,q) * tc(a,b,c,l,m,q)
        enddo q
      enddo m
    enddo l
  enddo c
endpardo a, b
total = 0.0
collective total += s
)");
  // Every rank-6 element is sum over 4 k-elements of 1*1 = 4; there are
  // 4^6 elements in total across all blocks.
  EXPECT_DOUBLE_EQ(result.scalar("total"), 4096.0 * 16.0);
}

TEST(SipMoreTest, Rank6WithSubindexDimensions) {
  // Declaring the intermediate over subindices shrinks its blocks by the
  // sub-segmentation factor — the paper's remedy for seg^6 blow-up.
  const RunResult result = run(R"(
moindex a = 1, n
moindex b = 1, n
subindex aa of a
temp small(aa,b)
temp full(a,b)
scalar s
do a
  do b
    execute fill_coords full(a,b)
    do aa in a
      small(aa,b) = full(aa,b)
      s += small(aa,b) * small(aa,b)
    enddo aa
  enddo b
enddo a
)");
  // The sliced pieces tile the full blocks: compare against a direct sum.
  const RunResult direct = run(R"(
moindex a = 1, n
moindex b = 1, n
temp full(a,b)
scalar s
do a
  do b
    execute fill_coords full(a,b)
    s += full(a,b) * full(a,b)
  enddo b
enddo a
)");
  EXPECT_NEAR(result.scalar("s"), direct.scalar("s"), 1e-9);
}

TEST(SipMoreTest, NestedProcedureCalls) {
  const RunResult result = run(R"(
scalar x
proc inner
  x += 1.0
endproc
proc outer
  call inner
  call inner
endproc
call outer
call outer
call inner
)");
  EXPECT_DOUBLE_EQ(result.scalar("x"), 5.0);
}

TEST(SipMoreTest, ExecuteReadsDistributedBlock) {
  // A super instruction may take a distributed block as a (read-only)
  // argument; the interpreter fetches and clones it.
  const RunResult result = run(R"(
moindex i = 1, n
distributed d(i)
temp t(i)
scalar nrm
pardo i
  t(i) = 3.0
  put d(i) = t(i)
endpardo i
sip_barrier
do i
  get d(i)
  execute block_nrm2 d(i) nrm
enddo i
)");
  // Last block visited: 2 elements of 3.0.
  EXPECT_NEAR(result.scalar("nrm"), std::sqrt(2.0 * 9.0), 1e-12);
}

TEST(SipMoreTest, TailSegmentsEverywhere) {
  // big = 10 with segment 4: segments of extent 4, 4, 2.
  SipConfig config = more_config(3, 4);
  const RunResult result = run(R"(
moindex p = 1, big
moindex q = 1, big
distributed d(p,q)
temp t(p,q)
temp u(p,q)
scalar lsum
scalar total
pardo p, q
  t(p,q) = 1.0
  put d(p,q) = t(p,q)
endpardo p, q
sip_barrier
pardo p, q
  get d(p,q)
  u(p,q) = d(p,q)
  lsum += u(p,q) * u(p,q)
endpardo p, q
total = 0.0
collective total += lsum
)",
                               config);
  EXPECT_DOUBLE_EQ(result.scalar("total"), 100.0);
}

TEST(SipMoreTest, ContractionOverTailSegments) {
  SipConfig config = more_config(2, 4);
  const RunResult result = run(R"(
moindex p = 1, big
moindex q = 1, big
moindex r = 1, big
temp a(p,q)
temp b(q,r)
temp c(p,r)
scalar s
do p
  do r
    c(p,r) = 0.0
    do q
      a(p,q) = 1.0
      b(q,r) = 1.0
      c(p,r) += a(p,q) * b(q,r)
    enddo q
    s += c(p,r) * c(p,r)
  enddo r
enddo p
)",
                               config);
  // Each c element sums over all 10 q elements -> 10; 100 elements total.
  EXPECT_DOUBLE_EQ(result.scalar("s"), 100.0 * 100.0);
}

TEST(SipMoreTest, IfInsidePardoUsesIterationIndices) {
  const RunResult result = run(R"(
moindex i = 1, n
scalar lsum
scalar total
pardo i
  if i == 1
    lsum += 10.0
  else
    lsum += 1.0
  endif
endpardo i
total = 0.0
collective total += lsum
)");
  // Segments 1 and 2: one takes the then-branch, one the else-branch.
  EXPECT_DOUBLE_EQ(result.scalar("total"), 11.0);
}

TEST(SipMoreTest, ScalarsSurviveAcrossPardosPerWorker) {
  const RunResult result = run(R"(
moindex i = 1, n
scalar steps
scalar total
steps = 100.0
pardo i
  steps += 1.0
endpardo i
pardo i
  steps += 1.0
endpardo i
total = 0.0
collective total += steps
)");
  // Each of 2 workers starts at 100 and adds its iteration count; the
  // total over workers is 2*100 + 4 (iterations of both pardos).
  EXPECT_DOUBLE_EQ(result.scalar("total"), 204.0);
}

TEST(SipMoreTest, PutFromStaticBlock) {
  const RunResult result = run(R"(
moindex i = 1, n
static st(i)
distributed d(i)
temp u(i)
scalar lsum
scalar total
do i
  st(i) = 4.0
enddo i
pardo i
  put d(i) = st(i)
endpardo i
sip_barrier
pardo i
  get d(i)
  u(i) = d(i)
  lsum += u(i) * u(i)
endpardo i
total = 0.0
collective total += lsum
)");
  EXPECT_DOUBLE_EQ(result.scalar("total"), 4.0 * 16.0);
}

TEST(SipMoreTest, DeepLoopNesting) {
  const RunResult result = run(R"(
index a = 1, 2
index b = 1, 2
index c = 1, 2
index d = 1, 2
index e = 1, 2
index f = 1, 2
scalar count
do a
 do b
  do c
   do d
    do e
     do f
      count += 1.0
     enddo f
    enddo e
   enddo d
  enddo c
 enddo b
enddo a
)");
  EXPECT_DOUBLE_EQ(result.scalar("count"), 64.0);
}

TEST(SipMoreTest, ManyPardoIndices) {
  const RunResult result = run(R"(
moindex a = 1, n
moindex b = 1, n
moindex c = 1, n
moindex d = 1, n
moindex e = 1, n
scalar lsum
scalar total
pardo a, b, c, d, e where a <= b where b <= c
  lsum += 1.0
endpardo a, b, c, d, e
total = 0.0
collective total += lsum
)");
  // a<=b<=c over 2 segments each: 4 combinations; d,e free: 4 each.
  EXPECT_DOUBLE_EQ(result.scalar("total"), 4.0 * 4.0);
}

}  // namespace
}  // namespace sia::sip
