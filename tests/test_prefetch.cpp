// Unit tests for the look-ahead prefetcher (paper §V-A: "the SIP looks
// ahead and requests several blocks that it expects will be needed
// soon") and for batched get issue (all operand fetches of an
// instruction go out before the first blocking read).
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/error.hpp"
#include "sial/compiler.hpp"
#include "sip/launch.hpp"
#include "sip/prefetch.hpp"

namespace sia::sip {
namespace {

struct Fixture {
  explicit Fixture(const std::string& body) {
    SipConfig config;
    config.default_segment = 4;
    config.constants = {{"n", 16}};
    program = std::make_unique<sial::ResolvedProgram>(
        sial::compile_sial("sial test\n" + body + "\nendsial\n"), config);
    values.assign(program->indices().size(), sial::kUndefinedIndexValue);
  }

  sial::BlockOperand get_operand() const {
    for (const sial::Instruction& instr : program->code().code) {
      if (instr.op == sial::Opcode::kGet) return instr.blocks[0];
    }
    throw sia::Error("no get in program");
  }

  std::unique_ptr<sial::ResolvedProgram> program;
  std::vector<long> values;
};

constexpr const char* kDoLoopGet = R"(
moindex i = 1, n
moindex j = 1, n
distributed d(i,j)
temp t(i,j)
pardo i
  do j
    get d(i,j)
    t(i,j) = d(i,j)
  enddo j
endpardo i
)";

TEST(PrefetchTest, DoLoopLookaheadAdvancesTheLoopIndex) {
  Fixture fx(kDoLoopGet);
  fx.values[0] = 2;  // i
  fx.values[1] = 1;  // j (current)
  LoopContext loop;
  loop.is_pardo = false;
  loop.index_id = fx.program->code().index_id("j");
  loop.current = 1;
  loop.last = 4;
  const auto ids = prefetch_candidates(*fx.program, fx.get_operand(),
                                       fx.values, {&loop, 1}, 2);
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], BlockId(0, std::vector<int>{2, 2}));
  EXPECT_EQ(ids[1], BlockId(0, std::vector<int>{2, 3}));
}

TEST(PrefetchTest, PredictionMatchesActualFutureReads) {
  // Identity property behind both consumers of the look-ahead: the
  // predicted stream must equal the ids the interpreter will really
  // resolve when it advances the loop.
  Fixture fx(kDoLoopGet);
  fx.values[0] = 3;  // i
  fx.values[1] = 1;  // j
  LoopContext loop;
  loop.is_pardo = false;
  loop.index_id = fx.program->code().index_id("j");
  loop.current = 1;
  loop.last = 4;
  const auto predicted = prefetch_candidates(*fx.program, fx.get_operand(),
                                             fx.values, {&loop, 1}, 3);
  ASSERT_EQ(predicted.size(), 3u);
  for (long j = 2; j <= 4; ++j) {
    std::vector<long> values(fx.values.begin(), fx.values.end());
    values[1] = j;  // what the loop body will actually see at iteration j
    EXPECT_EQ(predicted[static_cast<std::size_t>(j - 2)],
              fx.program->resolve_operand(fx.get_operand(), values).id());
  }
}

TEST(PrefetchTest, LookaheadReadSetIsPrefetchCandidatesFiltered) {
  // lookahead_read_set is the shared source of truth for the serial
  // prefetcher and the dataflow window: unfiltered it must be identical
  // to prefetch_candidates, and the filter must remove exactly the
  // excluded ids (the interpreter excludes un-retired window puts).
  Fixture fx(kDoLoopGet);
  fx.values[0] = 2;
  fx.values[1] = 1;
  LoopContext loop;
  loop.is_pardo = false;
  loop.index_id = fx.program->code().index_id("j");
  loop.current = 1;
  loop.last = 4;
  const auto raw = prefetch_candidates(*fx.program, fx.get_operand(),
                                       fx.values, {&loop, 1}, 3);
  const auto unfiltered =
      lookahead_read_set(*fx.program, fx.get_operand(), fx.values,
                         {&loop, 1}, 3, nullptr);
  EXPECT_EQ(unfiltered, raw);

  ASSERT_GE(raw.size(), 2u);
  const BlockId blocked = raw[1];
  const auto filtered = lookahead_read_set(
      *fx.program, fx.get_operand(), fx.values, {&loop, 1}, 3,
      [&blocked](const BlockId& id) { return id == blocked; });
  EXPECT_EQ(filtered.size(), raw.size() - 1);
  for (const BlockId& id : filtered) EXPECT_NE(id, blocked);
}

TEST(PrefetchTest, LookaheadStopsAtLoopEnd) {
  Fixture fx(kDoLoopGet);
  fx.values[0] = 1;
  fx.values[1] = 4;
  LoopContext loop;
  loop.is_pardo = false;
  loop.index_id = fx.program->code().index_id("j");
  loop.current = 4;
  loop.last = 4;  // last iteration: nothing ahead
  EXPECT_TRUE(prefetch_candidates(*fx.program, fx.get_operand(), fx.values,
                                  {&loop, 1}, 3)
                  .empty());
}

TEST(PrefetchTest, DepthZeroDisables) {
  Fixture fx(kDoLoopGet);
  fx.values[0] = 1;
  fx.values[1] = 1;
  LoopContext loop;
  loop.is_pardo = false;
  loop.index_id = fx.program->code().index_id("j");
  loop.current = 1;
  loop.last = 4;
  EXPECT_TRUE(prefetch_candidates(*fx.program, fx.get_operand(), fx.values,
                                  {&loop, 1}, 0)
                  .empty());
}

TEST(PrefetchTest, LoopNotDrivingOperandIsSkipped) {
  // The innermost loop runs over an index the operand does not use; the
  // prefetcher must look at the next loop out.
  Fixture fx(R"(
moindex i = 1, n
moindex j = 1, n
moindex k = 1, n
distributed d(i,j)
temp t(i,j)
pardo i
  do j
    do k
      get d(i,j)
      t(i,j) = d(i,j)
    enddo k
  enddo j
endpardo i
)");
  fx.values[0] = 1;  // i
  fx.values[1] = 2;  // j
  fx.values[2] = 1;  // k
  LoopContext inner;  // over k: irrelevant to d(i,j)
  inner.is_pardo = false;
  inner.index_id = fx.program->code().index_id("k");
  inner.current = 1;
  inner.last = 4;
  LoopContext outer;  // over j: drives the operand
  outer.is_pardo = false;
  outer.index_id = fx.program->code().index_id("j");
  outer.current = 2;
  outer.last = 4;
  const LoopContext loops[] = {inner, outer};
  const auto ids = prefetch_candidates(*fx.program, fx.get_operand(),
                                       fx.values, loops, 2);
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], BlockId(0, std::vector<int>{1, 3}));
  EXPECT_EQ(ids[1], BlockId(0, std::vector<int>{1, 4}));
}

TEST(PrefetchTest, PardoChunkLookaheadUsesFilteredPositions) {
  Fixture fx(R"(
moindex i = 1, n
moindex j = 1, n
distributed d(i,j)
temp t(i,j)
pardo i, j where i < j
  get d(i,j)
  t(i,j) = d(i,j)
endpardo i, j
)");
  const sial::PardoInfo& pardo = fx.program->code().pardos[0];
  const auto filtered = fx.program->pardo_filtered_space(pardo, fx.values);
  ASSERT_EQ(filtered.size(), 6u);  // i<j over a 4x4 segment grid

  // Current iteration is position 0 (i=1,j=2); chunk covers 0..3.
  std::vector<long> decoded(2);
  fx.program->pardo_decode(pardo, fx.values, filtered[0], decoded);
  fx.values[0] = decoded[0];
  fx.values[1] = decoded[1];

  LoopContext loop;
  loop.is_pardo = true;
  loop.pardo = &pardo;
  loop.filtered = &filtered;
  loop.next_pos = 1;
  loop.end_pos = 4;
  const auto ids = prefetch_candidates(*fx.program, fx.get_operand(),
                                       fx.values, {&loop, 1}, 8);
  // Depth 8 clipped to the chunk end: positions 1..3.
  ASSERT_EQ(ids.size(), 3u);
  for (std::size_t k = 0; k < ids.size(); ++k) {
    fx.program->pardo_decode(pardo, fx.values,
                             filtered[k + 1], decoded);
    EXPECT_EQ(ids[k],
              BlockId(0, std::vector<int>{static_cast<int>(decoded[0]),
                                          static_cast<int>(decoded[1])}));
  }
}

TEST(PrefetchTest, NoLoopsMeansNoCandidates) {
  Fixture fx(kDoLoopGet);
  fx.values[0] = 1;
  fx.values[1] = 1;
  EXPECT_TRUE(
      prefetch_candidates(*fx.program, fx.get_operand(), fx.values, {}, 4)
          .empty());
}

TEST(PrefetchTest, HypotheticalValueOutsideArrayIsDropped) {
  // The loop index range extends past the array (narrower decl index):
  // candidates falling outside the array grid are skipped, not errors.
  Fixture fx(R"(
moindex i = 1, n
moindex h = 1, n+8
distributed d(i)
temp t(i)
do h
  get d(h)
  t(h) = d(h)
enddo h
)");
  fx.values[1] = 4;  // h at the last segment that maps into d
  LoopContext loop;
  loop.is_pardo = false;
  loop.index_id = fx.program->code().index_id("h");
  loop.current = 4;
  loop.last = 6;
  const auto ids = prefetch_candidates(*fx.program, fx.get_operand(),
                                       fx.values, {&loop, 1}, 3);
  EXPECT_TRUE(ids.empty());  // 5 and 6 fall outside d's grid
}

// ---------------------------------------------------------------------
// Batched get issue (config.batch_gets).

// Two implicit remote reads per statement: without batching the second
// fetch is only issued after the first reply arrived; with batching both
// requests are in flight before the worker blocks.
constexpr const char* kTwoReadsPerStatement = R"(
moindex a = 1, n
moindex b = 1, n
moindex k = 1, n
distributed A(a,k)
distributed C(a,b)
temp t(a,k)
temp tmp(a,b)
temp cfin(a,b)
scalar lsum
scalar total
pardo a, k
  execute fill_coords t(a,k)
  put A(a,k) = t(a,k)
endpardo a, k
sip_barrier
pardo a, b
  do k
    tmp(a,b) = A(a,k) * A(b,k)
    put C(a,b) += tmp(a,b)
  enddo k
endpardo a, b
sip_barrier
pardo a, b
  get C(a,b)
  cfin(a,b) = C(a,b)
  lsum += cfin(a,b) * cfin(a,b)
endpardo a, b
total = 0.0
collective total += lsum
)";

RunResult run_batched(bool batch_gets) {
  SipConfig config;
  config.workers = 4;
  config.io_servers = 0;
  config.default_segment = 4;
  config.constants = {{"n", 24}};
  config.prefetch_depth = 0;  // isolate batching from look-ahead
  config.batch_gets = batch_gets;
  config.profiling = true;
  Sip sip(config);
  return sip.run_source(std::string("sial test\n") + kTwoReadsPerStatement +
                        "\nendsial\n");
}

double total_block_wait(const RunResult& result) {
  return std::accumulate(result.profile.worker_block_wait.begin(),
                         result.profile.worker_block_wait.end(), 0.0);
}

TEST(BatchGetsTest, SameResultAndReportedPerWorkerWait) {
  const RunResult off = run_batched(false);
  const RunResult on = run_batched(true);
  // Correctness must not depend on issue order.
  EXPECT_DOUBLE_EQ(off.scalar("total"), on.scalar("total"));
  // The report carries one get/request wait entry per worker.
  ASSERT_EQ(on.profile.worker_block_wait.size(), 4u);
  ASSERT_EQ(off.profile.worker_block_wait.size(), 4u);
  for (const double wait : on.profile.worker_block_wait) {
    EXPECT_GE(wait, 0.0);
  }
}

TEST(BatchGetsTest, BatchingDoesNotIncreaseBlockWait) {
  // Wall-clock based, so run a few times and compare the best case of
  // each configuration; batching must not make block waits worse, and
  // usually shrinks them (both requests are serviced during one wait).
  double min_off = 1e9, min_on = 1e9;
  for (int rep = 0; rep < 3; ++rep) {
    min_off = std::min(min_off, total_block_wait(run_batched(false)));
    min_on = std::min(min_on, total_block_wait(run_batched(true)));
  }
  EXPECT_LE(min_on, min_off * 1.5 + 0.01)
      << "batched gets waited longer than serial gets";
}

// ---------------------------------------------------------------------
// Request look-ahead (served arrays): exec_request reuses the same
// prefetch_candidates walk as exec_get, so blocks stream toward the
// worker while the current iteration is still computing.

constexpr const char* kServedSweep = R"(
moindex a = 1, n
moindex k = 1, n
served S(a,k)
temp t(a,k)
temp u(a,k)
scalar lsum
scalar total
pardo a, k
  execute fill_coords t(a,k)
  prepare S(a,k) = t(a,k)
endpardo a, k
server_barrier
pardo a
  do k
    request S(a,k)
    u(a,k) = S(a,k)
    lsum += u(a,k) * u(a,k)
  enddo k
endpardo a
total = 0.0
collective total += lsum
)";

RunResult run_served(int prefetch_depth) {
  SipConfig config;
  config.workers = 4;
  config.io_servers = 1;
  config.default_segment = 4;
  config.server_disk_threads = 2;
  config.prefetch_depth = prefetch_depth;
  config.constants = {{"n", 24}};
  config.profiling = true;
  Sip sip(config);
  return sip.run_source(std::string("sial test\n") + kServedSweep +
                        "\nendsial\n");
}

TEST(RequestLookaheadTest, LookaheadIssuesAndResultUnchanged) {
  const RunResult off = run_served(0);
  const RunResult on = run_served(4);
  // Identical result regardless of speculative request order.
  EXPECT_DOUBLE_EQ(off.scalar("total"), on.scalar("total"));
  // The client actually speculated, the server saw the flagged requests,
  // and no speculation was wasted on absent blocks.
  EXPECT_GT(on.profile.served.client_lookahead_issued, 0);
  EXPECT_GT(on.profile.served.server_lookahead_requests, 0);
  EXPECT_EQ(on.profile.served.client_lookahead_misses, 0);
  EXPECT_EQ(off.profile.served.client_lookahead_issued, 0);
  // Look-ahead turns demand requests into local cache hits, so far
  // fewer blocking demand round trips are issued.
  EXPECT_LT(on.profile.served.client_requests_issued,
            off.profile.served.client_requests_issued);
}

TEST(RequestLookaheadTest, LookaheadDoesNotIncreaseRequestWait) {
  // Wall-clock based like BatchingDoesNotIncreaseBlockWait: compare the
  // best of three runs; look-ahead must not make request waits worse,
  // and usually shrinks them (the block is local before it is needed).
  double min_off = 1e9, min_on = 1e9;
  for (int rep = 0; rep < 3; ++rep) {
    min_off = std::min(min_off, total_block_wait(run_served(0)));
    min_on = std::min(min_on, total_block_wait(run_served(4)));
  }
  EXPECT_LE(min_on, min_off * 1.5 + 0.01)
      << "request look-ahead waited longer than blocking requests";
}

}  // namespace
}  // namespace sia::sip
