// SIP distributed-array tests: put/get/accumulate, create/delete, caching,
// and barrier-epoch semantics across worker counts.
#include <gtest/gtest.h>

#include "sip/launch.hpp"

namespace sia::sip {
namespace {

SipConfig config_with(int workers, int segment = 3) {
  SipConfig config;
  config.workers = workers;
  config.io_servers = 0;
  config.default_segment = segment;
  config.constants = {{"n", 9}};
  return config;
}

RunResult run(const std::string& body, const SipConfig& config) {
  Sip sip(config);
  return sip.run_source("sial test\n" + body + "\nendsial\n");
}

constexpr const char* kPutGetRoundTrip = R"(
moindex i = 1, n
moindex j = 1, n
distributed d(i,j)
temp t(i,j)
temp u(i,j)
scalar lsum
scalar total
pardo i, j
  execute fill_coords t(i,j)
  put d(i,j) = t(i,j)
endpardo i, j
sip_barrier
pardo i, j
  get d(i,j)
  execute fill_coords t(i,j)
  u(i,j) = d(i,j)
  u(i,j) -= t(i,j)
  lsum += u(i,j) * u(i,j)
endpardo i, j
total = 0.0
collective total += lsum
)";

TEST(SipDistTest, PutGetRoundTripAcrossWorkerCounts) {
  for (const int workers : {1, 2, 4, 7}) {
    const RunResult result = run(kPutGetRoundTrip, config_with(workers));
    EXPECT_NEAR(result.scalar("total"), 0.0, 1e-18)
        << workers << " workers";
  }
}

TEST(SipDistTest, AccumulatePutsSumContributions) {
  // Every (i,j) iteration accumulates 1.0 into the SAME block d(1,1)...
  // rather: every worker accumulates into its own (i,j); we instead
  // accumulate twice from two pardos without a barrier (allowed for +=).
  const RunResult result = run(R"(
moindex i = 1, n
distributed d(i)
temp t(i)
temp u(i)
scalar lsum
scalar total
pardo i
  t(i) = 1.0
  put d(i) = t(i)
endpardo i
sip_barrier
pardo i
  t(i) = 2.0
  put d(i) += t(i)
  put d(i) += t(i)
endpardo i
sip_barrier
pardo i
  get d(i)
  u(i) = d(i)
  lsum += u(i) * u(i)
endpardo i
total = 0.0
collective total += lsum
)",
                               config_with(3));
  // Elements are 1 + 2 + 2 = 5; 9 elements.
  EXPECT_DOUBLE_EQ(result.scalar("total"), 9.0 * 25.0);
}

TEST(SipDistTest, GetWithoutExplicitGetStillWorks) {
  // Reading a distributed block without a preceding `get` issues the
  // fetch implicitly (counted in the stats).
  const RunResult result = run(R"(
moindex i = 1, n
distributed d(i)
temp t(i)
temp u(i)
scalar lsum
scalar total
pardo i
  t(i) = 3.0
  put d(i) = t(i)
endpardo i
sip_barrier
pardo i
  u(i) = d(i)
  lsum += u(i) * u(i)
endpardo i
total = 0.0
collective total += lsum
)",
                               config_with(3));
  EXPECT_DOUBLE_EQ(result.scalar("total"), 9.0 * 9.0);
}

TEST(SipDistTest, CreateDeleteAndRefill) {
  const RunResult result = run(R"(
moindex i = 1, n
distributed d(i)
temp t(i)
temp u(i)
scalar lsum
scalar total
create d
pardo i
  t(i) = 1.0
  put d(i) = t(i)
endpardo i
sip_barrier
delete d
sip_barrier
create d
pardo i
  t(i) = 7.0
  put d(i) = t(i)
endpardo i
sip_barrier
pardo i
  get d(i)
  u(i) = d(i)
  lsum += u(i) * u(i)
endpardo i
total = 0.0
collective total += lsum
)",
                               config_with(2));
  EXPECT_DOUBLE_EQ(result.scalar("total"), 9.0 * 49.0);
}

TEST(SipDistTest, ManySmallBlocksManyWorkers) {
  SipConfig config = config_with(6, /*segment=*/1);
  const RunResult result = run(kPutGetRoundTrip, config);
  EXPECT_NEAR(result.scalar("total"), 0.0, 1e-18);
  // With segment 1 there are 81 blocks; communication must have happened.
  EXPECT_GT(result.traffic.messages_sent, 81);
}

TEST(SipDistTest, StatsAccountLocalAndRemote) {
  const RunResult result = run(kPutGetRoundTrip, config_with(4));
  EXPECT_GT(result.workers.puts_remote + result.workers.puts_local, 0);
  EXPECT_GT(result.workers.gets_issued + result.workers.gets_local +
                result.workers.gets_cached,
            0);
}

TEST(SipDistTest, CacheReusesFetchedBlocks) {
  // The same remote block is read twice in one iteration: the second read
  // must hit the worker cache, not the network.
  const RunResult result = run(R"(
moindex i = 1, n
distributed d(i)
temp t(i)
temp u(i)
temp v(i)
scalar lsum
scalar total
pardo i
  t(i) = 2.0
  put d(i) = t(i)
endpardo i
sip_barrier
pardo i
  get d(i)
  u(i) = d(i)
  v(i) = d(i)
  lsum += u(i) * v(i)
endpardo i
total = 0.0
collective total += lsum
)",
                               config_with(4));
  EXPECT_DOUBLE_EQ(result.scalar("total"), 9.0 * 4.0);
  EXPECT_GT(result.workers.gets_cached + result.workers.gets_local, 0);
}

TEST(SipDistTest, PrefetchIssuesLookaheadGets) {
  // A get inside a sequential do loop triggers look-ahead fetches.
  SipConfig config = config_with(2);
  config.prefetch_depth = 2;
  const RunResult with_prefetch = run(R"(
moindex i = 1, n
moindex j = 1, n
distributed d(i,j)
temp t(i,j)
temp u(i,j)
scalar lsum
scalar total
pardo i, j
  t(i,j) = 1.0
  put d(i,j) = t(i,j)
endpardo i, j
sip_barrier
pardo i
  do j
    get d(i,j)
    u(i,j) = d(i,j)
    lsum += u(i,j) * u(i,j)
  enddo j
endpardo i
total = 0.0
collective total += lsum
)",
                                      config);
  EXPECT_DOUBLE_EQ(with_prefetch.scalar("total"), 81.0);
}

TEST(SipDistTest, PrefetchOffGivesSameAnswer) {
  SipConfig off = config_with(3);
  off.prefetch_depth = 0;
  SipConfig on = config_with(3);
  on.prefetch_depth = 4;
  const RunResult result_off = run(kPutGetRoundTrip, off);
  const RunResult result_on = run(kPutGetRoundTrip, on);
  EXPECT_DOUBLE_EQ(result_off.scalar("total"), result_on.scalar("total"));
}

TEST(SipDistTest, CoalescingMergesRepeatedAccumulatePuts) {
  // Every iteration of the do loop accumulates into the SAME distributed
  // block: write combining merges the n/segment contributions of one
  // pardo task into a single put message. Results must be identical.
  constexpr const char* kRepeatedAccumulate = R"(
moindex i = 1, n
moindex k = 1, n
distributed d(i)
temp t(i)
temp u(i)
scalar lsum
scalar total
pardo i
  do k
    t(i) = 1.0
    put d(i) += t(i)
  enddo k
endpardo i
sip_barrier
pardo i
  get d(i)
  u(i) = d(i)
  lsum += u(i) * u(i)
endpardo i
total = 0.0
collective total += lsum
)";
  SipConfig off_config = config_with(4);
  off_config.coalesce_puts = false;
  SipConfig on_config = config_with(4);
  on_config.coalesce_puts = true;
  const RunResult off = run(kRepeatedAccumulate, off_config);
  const RunResult on = run(kRepeatedAccumulate, on_config);

  // 3 k-segments accumulate 1.0 -> each of the 9 elements is 3.0.
  EXPECT_DOUBLE_EQ(off.scalar("total"), 9.0 * 9.0);
  EXPECT_DOUBLE_EQ(on.scalar("total"), off.scalar("total"));

  // With coalescing the shadow table absorbed repeat accumulates...
  EXPECT_GT(on.workers.puts_coalesced, 0);
  EXPECT_EQ(off.workers.puts_coalesced, 0);
  // ...so strictly fewer put messages crossed the fabric.
  EXPECT_LT(on.workers.puts_remote + on.workers.puts_local,
            off.workers.puts_remote + off.workers.puts_local);
  // Every merged accumulate is exactly one put that never became a
  // message: the per-put counters must balance. (Asserting on whole-run
  // traffic.messages_sent here was flaky — totals include
  // timing-dependent background traffic such as chunk requests landing
  // in different epochs, demand-get dedup races, and heartbeats.)
  EXPECT_EQ(on.workers.puts_remote + on.workers.puts_local +
                on.workers.puts_coalesced,
            off.workers.puts_remote + off.workers.puts_local);
}

TEST(SipDistTest, CoalescingFlushedAtBarrierIsVisibleToOtherWorkers) {
  // A worker's shadowed accumulates must all be applied at the home
  // before any reader past the barrier sees the block; the round-trip
  // equality above plus this cross-worker read exercises the flush path
  // with several blocks per shadow table.
  SipConfig config = config_with(3, /*segment=*/2);
  config.coalesce_puts = true;
  const RunResult result = run(R"(
moindex i = 1, n
moindex k = 1, n
distributed d(i)
temp t(i)
temp u(i)
scalar lsum
scalar total
pardo k
  do i
    t(i) = 2.0
    put d(i) += t(i)
  enddo i
endpardo k
sip_barrier
pardo i
  get d(i)
  u(i) = d(i)
  lsum += u(i) * u(i)
endpardo i
total = 0.0
collective total += lsum
)",
                               config);
  // 5 k-segment tasks each accumulate 2.0 -> every element is 10.0.
  EXPECT_DOUBLE_EQ(result.scalar("total"), 9.0 * 100.0);
}

TEST(SipDistTest, PermutedPut) {
  // put with permuted source indices stores the transposed block.
  const RunResult result = run(R"(
moindex i = 1, n
moindex j = 1, n
distributed d(i,j)
temp t(j,i)
temp u(i,j)
temp w(j,i)
scalar lsum
scalar total
pardo i, j
  execute fill_coords t(j,i)
  put d(i,j) = t(j,i)
endpardo i, j
sip_barrier
pardo i, j
  get d(i,j)
  execute fill_coords w(j,i)
  u(i,j) = w(j,i)
  u(i,j) -= d(i,j)
  lsum += u(i,j) * u(i,j)
endpardo i, j
total = 0.0
collective total += lsum
)",
                               config_with(2));
  EXPECT_NEAR(result.scalar("total"), 0.0, 1e-18);
}

}  // namespace
}  // namespace sia::sip
