// SIP interpreter tests: scalar machinery, control flow, node-local block
// operations — everything that needs no inter-worker communication.
#include <gtest/gtest.h>

#include <cmath>

#include "sip/launch.hpp"
#include "sip/superinstr.hpp"

namespace sia::sip {
namespace {

SipConfig small_config(int workers = 2) {
  SipConfig config;
  config.workers = workers;
  config.io_servers = 0;
  config.default_segment = 3;
  config.constants = {{"n", 6}, {"m", 9}};
  return config;
}

RunResult run(const std::string& body, SipConfig config = small_config()) {
  Sip sip(config);
  return sip.run_source("sial test\n" + body + "\nendsial\n");
}

TEST(SipBasicTest, ScalarArithmetic) {
  const RunResult result = run(R"(
scalar x
scalar y
x = 2.0 + 3.0 * 4.0
y = (2.0 + 3.0) * 4.0
x += 1.0
y -= 2.0
)");
  EXPECT_DOUBLE_EQ(result.scalar("x"), 15.0);
  EXPECT_DOUBLE_EQ(result.scalar("y"), 18.0);
}

TEST(SipBasicTest, ScalarFunctionsAndDivision) {
  const RunResult result = run(R"(
scalar x
x = sqrt(16.0) + abs(0.0 - 2.0) + exp(0.0)
x = x / 7.0
x *= 2.0
)");
  EXPECT_DOUBLE_EQ(result.scalar("x"), 2.0);
}

TEST(SipBasicTest, ConstantsResolveFromConfig) {
  const RunResult result = run("scalar x\nx = n + m\n");
  EXPECT_DOUBLE_EQ(result.scalar("x"), 15.0);
}

TEST(SipBasicTest, IfElseBothBranches) {
  const RunResult result = run(R"(
scalar a
scalar b
a = 1.0
if a < 2.0
  b = 10.0
else
  b = 20.0
endif
if a > 2.0
  a = 100.0
endif
)");
  EXPECT_DOUBLE_EQ(result.scalar("b"), 10.0);
  EXPECT_DOUBLE_EQ(result.scalar("a"), 1.0);
}

TEST(SipBasicTest, ComparisonOperators) {
  const RunResult result = run(R"(
scalar t
t = 0.0
if 1.0 <= 1.0
  t += 1.0
endif
if 1.0 == 1.0
  t += 1.0
endif
if 1.0 != 2.0
  t += 1.0
endif
if 2.0 >= 3.0
  t += 100.0
endif
)");
  EXPECT_DOUBLE_EQ(result.scalar("t"), 3.0);
}

TEST(SipBasicTest, DoLoopIteratesSegments) {
  // n = 6 elements, segment 3 -> 2 segments; i takes values 1, 2.
  const RunResult result = run(R"(
moindex i = 1, n
scalar count
scalar sum
do i
  count += 1.0
  sum += i
enddo i
)");
  EXPECT_DOUBLE_EQ(result.scalar("count"), 2.0);
  EXPECT_DOUBLE_EQ(result.scalar("sum"), 3.0);
}

TEST(SipBasicTest, SimpleIndexIteratesElements) {
  const RunResult result = run(R"(
index k = 1, 10
scalar count
do k
  count += 1.0
enddo k
)");
  EXPECT_DOUBLE_EQ(result.scalar("count"), 10.0);
}

TEST(SipBasicTest, NestedDoLoops) {
  const RunResult result = run(R"(
index a = 1, 4
index b = 1, 5
scalar count
do a
  do b
    count += 1.0
  enddo b
enddo a
)");
  EXPECT_DOUBLE_EQ(result.scalar("count"), 20.0);
}

TEST(SipBasicTest, ExitLeavesInnermostLoop) {
  const RunResult result = run(R"(
index a = 1, 4
index b = 1, 100
scalar count
do a
  do b
    count += 1.0
    if b >= 3
      exit
    endif
  enddo b
enddo a
)");
  EXPECT_DOUBLE_EQ(result.scalar("count"), 12.0);
}

TEST(SipBasicTest, ProceduresExecuteAndReturn) {
  const RunResult result = run(R"(
scalar x
proc add_two
  x += 2.0
endproc
x = 1.0
call add_two
call add_two
)");
  EXPECT_DOUBLE_EQ(result.scalar("x"), 5.0);
}

TEST(SipBasicTest, ProcCalledInsideLoop) {
  const RunResult result = run(R"(
index k = 1, 3
scalar x
proc bump
  x += k
endproc
do k
  call bump
enddo k
)");
  EXPECT_DOUBLE_EQ(result.scalar("x"), 6.0);
}

TEST(SipBasicTest, BlockFillAndDot) {
  // t is a 3x3 block (one segment per dim); sum of ones = 9.
  const RunResult result = run(R"(
moindex i = 1, n
moindex j = 1, n
temp t(i,j)
scalar s
do i
  do j
    t(i,j) = 1.0
    s += t(i,j) * t(i,j)
  enddo j
enddo i
)");
  EXPECT_DOUBLE_EQ(result.scalar("s"), 4.0 * 9.0);
}

TEST(SipBasicTest, BlockScalarOperations) {
  const RunResult result = run(R"(
moindex i = 1, n
temp t(i)
scalar s
do i
  t(i) = 2.0
  t(i) += 1.0
  t(i) *= 3.0
  t(i) -= 4.0
  s += t(i) * t(i)
enddo i
)");
  // Each element: ((2+1)*3)-4 = 5; 3 elements per block, 2 blocks.
  EXPECT_DOUBLE_EQ(result.scalar("s"), 2.0 * 3.0 * 25.0);
}

TEST(SipBasicTest, BlockCopyWithPermutation) {
  const RunResult result = run(R"(
moindex i = 1, n
moindex j = 1, m
temp t(i,j)
temp u(j,i)
scalar s
do i
  do j
    execute fill_coords t(i,j)
    u(j,i) = t(i,j)
    s += u(j,i) * u(j,i) - t(i,j) * t(i,j)
  enddo j
enddo i
)");
  // Permuted copy preserves the norm.
  EXPECT_NEAR(result.scalar("s"), 0.0, 1e-9);
}

TEST(SipBasicTest, BlockAddSubAndScaledCopy) {
  const RunResult result = run(R"(
moindex i = 1, n
temp a(i)
temp b(i)
temp c(i)
scalar s
do i
  a(i) = 3.0
  b(i) = 1.0
  c(i) = a(i) + b(i)
  c(i) = c(i) - b(i)
  c(i) += 0.5 * a(i)
  c(i) -= 0.5 * a(i)
  b(i) = 2.0 * a(i)
  s += c(i) * b(i)
enddo i
)");
  // c = 3, b = 6 per element; 3 elements x 2 blocks.
  EXPECT_DOUBLE_EQ(result.scalar("s"), 6.0 * 18.0);
}

TEST(SipBasicTest, BlockContractionMatmul) {
  const RunResult result = run(R"(
moindex i = 1, n
moindex j = 1, n
moindex k = 1, n
temp a(i,k)
temp b(k,j)
temp c(i,j)
scalar s
do i
  do j
    c(i,j) = 0.0
    do k
      a(i,k) = 1.0
      b(k,j) = 2.0
      c(i,j) += a(i,k) * b(k,j)
    enddo k
    s += c(i,j) * c(i,j)
  enddo j
enddo i
)");
  // Each c element = sum over 6 k-elements of 1*2 = 12; 9 elements per
  // block, 4 (i,j) block pairs.
  EXPECT_DOUBLE_EQ(result.scalar("s"), 4.0 * 9.0 * 144.0);
}

TEST(SipBasicTest, StaticArrayPersistsAcrossLoops) {
  const RunResult result = run(R"(
moindex i = 1, n
static acc(i)
scalar s
do i
  acc(i) += 1.0
enddo i
do i
  acc(i) += 1.0
enddo i
do i
  s += acc(i) * acc(i)
enddo i
)");
  EXPECT_DOUBLE_EQ(result.scalar("s"), 6.0 * 4.0);
}

TEST(SipBasicTest, TempsResetEachPardoIteration) {
  // A temp assigned with = in every iteration; accumulating across
  // iterations must NOT happen. n = 6, segment 3 -> 2 iterations; each
  // block holds 3 elements of value 2.0, so each dot adds 12.
  const RunResult result = run(R"(
moindex i = 1, n
temp t(i)
scalar s
scalar total
pardo i
  t(i) = 1.0
  t(i) += 1.0
  s += t(i) * t(i)
endpardo i
total = 0.0
collective total += s
)");
  EXPECT_DOUBLE_EQ(result.scalar("total"), 2.0 * 12.0);
}

TEST(SipBasicTest, ExecuteBuiltins) {
  const RunResult result = run(R"(
moindex i = 1, n
temp t(i)
scalar nrm
scalar mx
do i
  execute fill_value t(i) 3.0
  execute block_nrm2 t(i) nrm
  execute block_max_abs t(i) mx
enddo i
)");
  EXPECT_NEAR(result.scalar("nrm"), std::sqrt(27.0), 1e-12);
  EXPECT_DOUBLE_EQ(result.scalar("mx"), 3.0);
}

TEST(SipBasicTest, PardoDistributesAllIterations) {
  for (int workers : {1, 2, 3, 5}) {
    const RunResult result = run(R"(
moindex i = 1, m
moindex j = 1, m
scalar lsum
scalar total
pardo i, j
  lsum += 1.0
endpardo i, j
total = 0.0
collective total += lsum
)",
                                 small_config(workers));
    EXPECT_DOUBLE_EQ(result.scalar("total"), 9.0) << workers << " workers";
  }
}

TEST(SipBasicTest, PardoWhereClauses) {
  const RunResult result = run(R"(
moindex i = 1, m
moindex j = 1, m
scalar lsum
scalar total
pardo i, j where i < j
  lsum += 1.0
endpardo i, j
total = 0.0
collective total += lsum
)");
  EXPECT_DOUBLE_EQ(result.scalar("total"), 3.0);  // (1,2),(1,3),(2,3)
}

TEST(SipBasicTest, WhereAgainstConstantExpression) {
  const RunResult result = run(R"(
moindex i = 1, m
scalar lsum
scalar total
pardo i where i <= 2
  lsum += 1.0
endpardo i
total = 0.0
collective total += lsum
)");
  EXPECT_DOUBLE_EQ(result.scalar("total"), 2.0);
}

TEST(SipBasicTest, EmptyPardoIsFine) {
  const RunResult result = run(R"(
moindex i = 1, m
scalar total
scalar lsum
pardo i where i > 100
  lsum += 1.0
endpardo i
total = 0.0
collective total += lsum
)");
  EXPECT_DOUBLE_EQ(result.scalar("total"), 0.0);
}

TEST(SipBasicTest, SequentialPardosWithoutBarrier) {
  const RunResult result = run(R"(
moindex i = 1, m
scalar lsum
scalar total
pardo i
  lsum += 1.0
endpardo i
pardo i
  lsum += 1.0
endpardo i
total = 0.0
collective total += lsum
)");
  EXPECT_DOUBLE_EQ(result.scalar("total"), 6.0);
}

TEST(SipBasicTest, CollectiveSumsAcrossWorkers) {
  const RunResult result = run(R"(
scalar one
scalar total
one = 1.0
total = 0.0
collective total += one
)",
                               small_config(4));
  // Every worker contributes 1.0.
  EXPECT_DOUBLE_EQ(result.scalar("total"), 4.0);
}

TEST(SipBasicTest, ProfilerReportsPardoIterations) {
  SipConfig config = small_config(2);
  config.profiling = true;
  const RunResult result = run(R"(
moindex i = 1, m
scalar lsum
pardo i
  lsum += 1.0
endpardo i
)",
                               config);
  ASSERT_EQ(result.profile.pardos.size(), 1u);
  EXPECT_EQ(result.profile.pardos[0].iterations, 3);
  EXPECT_GT(result.profile.total_elapsed, 0.0);
  EXPECT_FALSE(result.profile.to_string().empty());
}

}  // namespace
}  // namespace sia::sip
