// End-to-end integration tests: every chemistry SIAL program executed on
// the full SIP (master + workers + I/O servers) must reproduce its dense
// single-threaded reference — the repository's version of the paper's
// "two implementations test each other" methodology (§VIII).
#include <gtest/gtest.h>

#include "chem/integrals.hpp"
#include "chem/programs.hpp"
#include "chem/reference.hpp"
#include "sip/launch.hpp"

namespace sia::sip {
namespace {

SipConfig chem_config() {
  chem::register_chem_superinstructions();
  SipConfig config;
  config.workers = 3;
  config.io_servers = 1;
  config.default_segment = 4;
  config.constants = {{"norb", 8}, {"nocc", 4}, {"maxiter", 3}};
  return config;
}

TEST(IntegrationTest, ContractionDemoMatchesReference) {
  Sip sip(chem_config());
  const RunResult result = sip.run_source(chem::contraction_demo_source());
  EXPECT_NEAR(result.scalar("rnorm2"),
              chem::ref_contraction_rnorm2(8, 4, 7.0), 1e-8);
}

TEST(IntegrationTest, Mp2EnergyMatchesReference) {
  Sip sip(chem_config());
  const RunResult result = sip.run_source(chem::mp2_energy_source());
  EXPECT_NEAR(result.scalar("e2"), chem::ref_mp2_energy(8, 4), 1e-12);
}

TEST(IntegrationTest, CcdEnergyAndNormMatchReference) {
  Sip sip(chem_config());
  const RunResult result = sip.run_source(chem::ccd_energy_source());
  double norm2 = 0.0;
  const double energy = chem::ref_ccd_energy(8, 4, 3, &norm2);
  EXPECT_NEAR(result.scalar("energy"), energy, 1e-11);
  EXPECT_NEAR(result.scalar("rnorm2"), norm2, 1e-11);
}

TEST(IntegrationTest, FockBuildMatchesReference) {
  Sip sip(chem_config());
  const RunResult result = sip.run_source(chem::fock_build_source());
  EXPECT_NEAR(result.scalar("fnorm"), chem::ref_fock_norm(8), 1e-10);
}

TEST(IntegrationTest, ServedMp2MatchesReference) {
  Sip sip(chem_config());
  const RunResult result = sip.run_source(chem::mp2_served_source());
  EXPECT_NEAR(result.scalar("e2"), chem::ref_mp2_energy(8, 4), 1e-12);
  EXPECT_NEAR(result.scalar("tnorm2"), chem::ref_mp2_amp_norm2(8, 4),
              1e-12);
}

TEST(IntegrationTest, CcdRunsBackToBackInOneSip) {
  // Two full programs in one runtime (chained SIAL programs).
  Sip sip(chem_config());
  const RunResult first = sip.run_source(chem::ccd_energy_source());
  const RunResult second = sip.run_source(chem::ccd_energy_source());
  EXPECT_DOUBLE_EQ(first.scalar("energy"), second.scalar("energy"));
}

TEST(IntegrationTest, ProfilerSeesTheHotLoop) {
  Sip sip(chem_config());
  const RunResult result = sip.run_source(chem::ccd_energy_source());
  // The profile identifies the CCD residual pardo as a cost center.
  ASSERT_FALSE(result.profile.pardos.empty());
  ASSERT_FALSE(result.profile.lines.empty());
  EXPECT_GT(result.profile.total_busy, 0.0);
  // The hottest instruction is a computational one, not bookkeeping.
  EXPECT_GT(result.profile.lines.front().seconds, 0.0);
}

TEST(IntegrationTest, TrafficScalesWithCommunication) {
  Sip sip(chem_config());
  const RunResult result = sip.run_source(chem::ccd_energy_source());
  EXPECT_GT(result.traffic.messages_sent, 0);
  EXPECT_GT(result.traffic.payload_doubles_sent, 0);
}

TEST(IntegrationTest, LargerSystemStillMatches) {
  SipConfig config = chem_config();
  config.constants = {{"norb", 12}, {"nocc", 4}, {"maxiter", 2}};
  Sip sip(config);
  const RunResult result = sip.run_source(chem::mp2_energy_source());
  EXPECT_NEAR(result.scalar("e2"), chem::ref_mp2_energy(12, 4), 1e-12);
}

TEST(IntegrationTest, UnevenTailSegmentsStillMatch) {
  // norb = 10 with segment 4: the virtual space has a tail segment of 2.
  SipConfig config = chem_config();
  config.constants = {{"norb", 10}, {"nocc", 4}, {"maxiter", 2}};
  Sip sip(config);
  const RunResult result = sip.run_source(chem::mp2_energy_source());
  EXPECT_NEAR(result.scalar("e2"), chem::ref_mp2_energy(10, 4), 1e-12);
}

TEST(IntegrationTest, TwoSialFormulationsAgree) {
  // The paper's §VIII development practice: "write multiple
  // implementations of the same algorithm and use the two versions as
  // tests of each other". MP2 formulated via the mp2_block_energy super
  // instruction vs. via intrinsic block dot products.
  Sip sip(chem_config());
  const RunResult via_superinstruction =
      sip.run_source(chem::mp2_energy_source());
  const RunResult via_blockdot = sip.run_source(R"(
sial mp2_blockdot
moindex i = 1, nocc
moindex j = 1, nocc
moindex a = nocc+1, norb
moindex b = nocc+1, norb
temp v1(i,a,j,b)
temp v2(i,b,j,a)
temp t(i,a,j,b)
scalar esum
scalar e2
scalar noccs
noccs = nocc
esum = 0.0
pardo i, j
  do a
    do b
      execute compute_integrals v1(i,a,j,b)
      execute compute_integrals v2(i,b,j,a)
      execute cc_update t(i,a,j,b) v1(i,a,j,b) noccs
      esum += 2.0 * t(i,a,j,b) * v1(i,a,j,b) - t(i,a,j,b) * v2(i,b,j,a)
    enddo b
  enddo a
endpardo i, j
e2 = 0.0
collective e2 += esum
endsial
)");
  EXPECT_NEAR(via_superinstruction.scalar("e2"),
              via_blockdot.scalar("e2"), 1e-12);
}

TEST(IntegrationTest, FockViaPutAccumulateAgrees) {
  // Second formulation of the Fock build: instead of assembling each
  // F(mu,nu) block in one task, scatter J/K contributions with put += --
  // the accumulate path that needs no barrier between writers.
  Sip sip(chem_config());
  const RunResult direct = sip.run_source(chem::fock_build_source());
  const RunResult scattered = sip.run_source(R"(
sial fock_scatter
aoindex mu = 1, norb
aoindex nu = 1, norb
aoindex la = 1, norb
aoindex si = 1, norb
distributed F(mu,nu)
temp h(mu,nu)
temp jmat(mu,nu)
temp kmat(mu,nu)
temp v(mu,nu,la,si)
temp vx(mu,la,nu,si)
temp dmat(la,si)
temp t(mu,nu)
scalar fsum
scalar fnorm2
scalar fnorm

# Seed F with the core Hamiltonian.
pardo mu, nu
  execute compute_core_h h(mu,nu)
  put F(mu,nu) = h(mu,nu)
endpardo mu, nu
sip_barrier

# Scatter each (la,si) shell's J and K contributions with accumulates;
# parallelism over the *integral* indices this time.
pardo la, si
  do mu
    do nu
      execute compute_integrals v(mu,nu,la,si)
      execute compute_density dmat(la,si)
      jmat(mu,nu) = v(mu,nu,la,si) * dmat(la,si)
      jmat(mu,nu) *= 2.0
      execute compute_integrals vx(mu,la,nu,si)
      kmat(mu,nu) = vx(mu,la,nu,si) * dmat(la,si)
      jmat(mu,nu) -= kmat(mu,nu)
      put F(mu,nu) += jmat(mu,nu)
    enddo nu
  enddo mu
endpardo la, si
sip_barrier

fsum = 0.0
pardo mu, nu
  get F(mu,nu)
  t(mu,nu) = F(mu,nu)
  fsum += t(mu,nu) * t(mu,nu)
endpardo mu, nu
fnorm2 = 0.0
collective fnorm2 += fsum
fnorm = sqrt(fnorm2)
endsial
)");
  EXPECT_NEAR(scattered.scalar("fnorm"), direct.scalar("fnorm"), 1e-10);
}

}  // namespace
}  // namespace sia::sip
