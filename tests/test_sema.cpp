// Unit tests for SIAL semantic analysis.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sial/parser.hpp"
#include "sial/sema.hpp"

namespace sia::sial {
namespace {

void check(const std::string& body) {
  const ProgramAst ast = parse_sial("sial test\n" + body + "\nendsial\n");
  check_sial(ast);
}

void expect_reject(const std::string& body, const std::string& fragment) {
  try {
    check(body);
    FAIL() << "expected CompileError mentioning '" << fragment << "'";
  } catch (const CompileError& error) {
    EXPECT_NE(std::string(error.what()).find(fragment), std::string::npos)
        << "actual message: " << error.what();
  }
}

constexpr const char* kDecls = R"(
aoindex mu = 1, norb
aoindex nu = 1, norb
moindex i = 1, nocc
moindex j = 1, nocc
subindex ii of i
temp t(mu,nu)
temp t4(mu,nu,i,j)
distributed d(mu,nu)
served s(mu,nu)
local l(mu,nu)
static st(mu,nu)
scalar x
scalar y
)";

TEST(SemaTest, AcceptsWellFormedProgram) {
  EXPECT_NO_THROW(check(std::string(kDecls) + R"(
pardo mu, nu where mu <= nu
  t(mu,nu) = 1.0
  put d(mu,nu) = t(mu,nu)
endpardo mu, nu
sip_barrier
)"));
}

TEST(SemaTest, RankMismatchRejected) {
  expect_reject(std::string(kDecls) + R"(
do mu
  t(mu) = 0.0
enddo mu
)",
                "rank");
}

TEST(SemaTest, IndexTypeMismatchRejected) {
  expect_reject(std::string(kDecls) + R"(
do mu
do i
  t(mu,i) = 0.0
enddo i
enddo mu
)",
                "requires aoindex");
}

TEST(SemaTest, SameTypeDifferentVariableAccepted) {
  // nu has the same type as mu: V(M,N,L,S)-style access must work.
  EXPECT_NO_THROW(check(std::string(kDecls) + R"(
do nu
do mu
  t(nu,mu) = 0.0
enddo mu
enddo nu
)"));
}

TEST(SemaTest, SubindexOnDistributedRejected) {
  expect_reject(std::string(kDecls) + R"(
moindex k = 1, nocc
distributed di(i,k)
do i
do k
do ii in i
  get di(ii,k)
enddo ii
enddo k
enddo i
)",
                "subindex");
}

TEST(SemaTest, DistributedArrayDeclaredWithSubindexRejected) {
  expect_reject("moindex i = 1, nocc\nsubindex ii of i\ndistributed z(ii)\n",
                "subindex");
}

TEST(SemaTest, PardoNestingRejected) {
  expect_reject(std::string(kDecls) + R"(
pardo mu
  pardo nu
  endpardo nu
endpardo mu
)",
                "nested");
}

TEST(SemaTest, PardoOverSubindexRejected) {
  expect_reject(std::string(kDecls) + R"(
pardo ii
endpardo ii
)",
                "subindex");
}

TEST(SemaTest, WhereClauseIndexMustBeInPardoList) {
  expect_reject(std::string(kDecls) + R"(
pardo mu where nu < 3
endpardo mu
)",
                "not a pardo index");
}

TEST(SemaTest, GetOnServedSuggestsRequest) {
  expect_reject(std::string(kDecls) + R"(
do mu
do nu
  get s(mu,nu)
enddo nu
enddo mu
)",
                "request");
}

TEST(SemaTest, PutOnServedSuggestsPrepare) {
  expect_reject(std::string(kDecls) + R"(
do mu
do nu
  put s(mu,nu) = t(mu,nu)
enddo nu
enddo mu
)",
                "prepare");
}

TEST(SemaTest, RequestOnDistributedRejected) {
  expect_reject(std::string(kDecls) + R"(
do mu
do nu
  request d(mu,nu)
enddo nu
enddo mu
)",
                "served");
}

TEST(SemaTest, AssignIntoDistributedRejected) {
  expect_reject(std::string(kDecls) + R"(
do mu
do nu
  d(mu,nu) = 1.0
enddo nu
enddo mu
)",
                "put");
}

TEST(SemaTest, AllocateOnTempRejected) {
  expect_reject(std::string(kDecls) + R"(
do nu
  allocate t(*,nu)
enddo nu
)",
                "local");
}

TEST(SemaTest, AllocateOnLocalAccepted) {
  EXPECT_NO_THROW(check(std::string(kDecls) + R"(
do nu
  allocate l(*,nu)
  deallocate l(*,nu)
enddo nu
)"));
}

TEST(SemaTest, CreateDeleteRequireDistributed) {
  expect_reject(std::string(kDecls) + "create s\n", "distributed");
  expect_reject(std::string(kDecls) + "delete t\n", "distributed");
  EXPECT_NO_THROW(check(std::string(kDecls) + "create d\ndelete d\n"));
}

TEST(SemaTest, ContractionIndexSetsChecked) {
  // Result must be indexed by the symmetric difference.
  expect_reject(std::string(kDecls) + R"(
aoindex la = 1, norb
temp a(mu,la)
temp b(la,nu)
do mu
do nu
do la
  t(mu,la) = a(mu,la) * b(la,nu)
enddo la
enddo nu
enddo mu
)",
                "must be indexed by");
}

TEST(SemaTest, ContractionRepeatedIndexRejected) {
  expect_reject(std::string(kDecls) + R"(
temp a(mu,mu)
temp r(nu)
do mu
do nu
  r(nu) = a(mu,mu) * t(mu,nu)
enddo nu
enddo mu
)",
                "repeat");
}

TEST(SemaTest, BlockAddRequiresSameIndexSets) {
  expect_reject(std::string(kDecls) + R"(
aoindex la = 1, norb
temp a(mu,la)
do mu
do nu
do la
  t(mu,nu) = t(mu,nu) + a(mu,la)
enddo la
enddo nu
enddo mu
)",
                "same index");
}

TEST(SemaTest, BlockCopyPermutationAccepted) {
  EXPECT_NO_THROW(check(std::string(kDecls) + R"(
temp u(nu,mu)
do mu
do nu
  u(nu,mu) = t(mu,nu)
enddo nu
enddo mu
)"));
}

TEST(SemaTest, BlockDotRequiresMatchingSets) {
  expect_reject(std::string(kDecls) + R"(
do mu
do nu
do i
  x = t(mu,nu) * t4(mu,nu,i,i)
enddo i
enddo nu
enddo mu
)",
                "same index");
}

TEST(SemaTest, BarrierInsidePardoRejected) {
  expect_reject(std::string(kDecls) + R"(
pardo mu
  sip_barrier
endpardo mu
)",
                "barrier");
}

TEST(SemaTest, CollectiveInsidePardoRejected) {
  expect_reject(std::string(kDecls) + R"(
pardo mu
  collective x += y
endpardo mu
)",
                "collective");
}

TEST(SemaTest, PardoInInsidePardoRejected) {
  expect_reject(std::string(kDecls) + R"(
pardo i
  pardo ii in i
  endpardo ii
endpardo i
)",
                "nested");
}

TEST(SemaTest, DoInRequiresDeclaredSuper) {
  expect_reject(std::string(kDecls) + R"(
do j
do ii in j
enddo ii
enddo j
)",
                "subindex of");
}

TEST(SemaTest, DoOverSubindexWithoutInRejected) {
  expect_reject(std::string(kDecls) + "do ii\nenddo ii\n", "'in' form");
}

TEST(SemaTest, CheckpointRequiresDistributed) {
  expect_reject(std::string(kDecls) + "checkpoint s \"k\"\n", "distributed");
}

TEST(SemaTest, ExitOutsideDoRejected) {
  expect_reject(std::string(kDecls) + R"(
pardo mu
  exit
endpardo mu
)",
                "do loop");
}

TEST(SemaTest, SubindexOfSubindexRejected) {
  expect_reject("moindex i = 1, nocc\nsubindex ii of i\nsubindex iii of ii\n",
                "subindex");
}

TEST(SemaTest, SliceOnStaticAccepted) {
  EXPECT_NO_THROW(check(std::string(kDecls) + R"(
moindex k = 1, nocc
temp ts(ii,k)
static sk(i,k)
do i
do k
do ii in i
  ts(ii,k) = sk(ii,k)
  sk(ii,k) = ts(ii,k)
enddo ii
enddo k
enddo i
)"));
}

TEST(SemaTest, ScaledBlockRequiresMatchingIndexSets) {
  expect_reject(std::string(kDecls) + R"(
temp u(i,j)
do mu
do nu
do i
do j
  t(mu,nu) = 2.0 * u(i,j)
enddo j
enddo i
enddo nu
enddo mu
)",
                "matching index");
}

}  // namespace
}  // namespace sia::sial
