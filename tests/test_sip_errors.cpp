// SIP error-detection tests: the runtime must turn misuse into clear
// errors rather than hangs or wrong answers — including the paper's
// "runtime system detects most improper uses of barriers".
#include <gtest/gtest.h>

#include "sip/launch.hpp"

namespace sia::sip {
namespace {

SipConfig base_config() {
  SipConfig config;
  config.workers = 2;
  config.io_servers = 1;
  config.default_segment = 3;
  config.constants = {{"n", 9}};
  return config;
}

void expect_error(const std::string& body, const std::string& fragment,
                  SipConfig config = base_config()) {
  Sip sip(config);
  try {
    sip.run_source("sial test\n" + body + "\nendsial\n");
    FAIL() << "expected RuntimeError mentioning '" << fragment << "'";
  } catch (const RuntimeError& error) {
    EXPECT_NE(std::string(error.what()).find(fragment), std::string::npos)
        << "actual: " << error.what();
  }
}

TEST(SipErrorTest, TempReadBeforeAssignment) {
  expect_error(R"(
moindex i = 1, n
temp t(i)
temp u(i)
scalar x
do i
  u(i) = t(i)
  x += u(i) * u(i)
enddo i
)",
               "before being assigned");
}

TEST(SipErrorTest, LocalUsedBeforeAllocate) {
  expect_error(R"(
moindex i = 1, n
local l(i)
do i
  l(i) = 1.0
enddo i
)",
               "allocate");
}

TEST(SipErrorTest, DoubleAllocateRejected) {
  expect_error(R"(
moindex i = 1, n
local l(i)
do i
  allocate l(i)
  allocate l(i)
enddo i
)",
               "already allocated");
}

TEST(SipErrorTest, GetOfNeverPutBlock) {
  expect_error(R"(
moindex i = 1, n
distributed d(i)
temp u(i)
scalar x
pardo i
  get d(i)
  u(i) = d(i)
  x += u(i) * u(i)
endpardo i
)",
               "never been put");
}

TEST(SipErrorTest, ConflictingPutsWithoutBarrierDetected) {
  // Every worker puts every block: with >= 2 workers the home worker sees
  // plain puts from different writers in one epoch.
  expect_error(R"(
moindex i = 1, n
distributed d(i)
temp t(i)
scalar x
x = 1.0
do i
  t(i) = x
  put d(i) = t(i)
enddo i
)",
               "sip_barrier");
}

TEST(SipErrorTest, MixedPutAndAccumulateDetected) {
  expect_error(R"(
moindex i = 1, n
distributed d(i)
temp t(i)
pardo i
  t(i) = 1.0
  put d(i) = t(i)
  put d(i) += t(i)
endpardo i
)",
               "conflicting put");
}

TEST(SipErrorTest, UnknownSuperInstruction) {
  expect_error(R"(
moindex i = 1, n
temp t(i)
do i
  execute definitely_not_registered t(i)
enddo i
)",
               "not registered");
}

TEST(SipErrorTest, DivisionByZero) {
  expect_error("scalar x\nx = 1.0 / 0.0\n", "division by zero");
}

TEST(SipErrorTest, InfeasibleMemoryReportsWorkerCount) {
  SipConfig config = base_config();
  config.worker_memory_bytes = 2048;  // absurdly small
  config.constants["n"] = 99;
  Sip sip(config);
  try {
    sip.run_source(R"(
sial test
moindex i = 1, n
moindex j = 1, n
distributed d(i,j)
temp t(i,j)
pardo i, j
  t(i,j) = 1.0
  put d(i,j) = t(i,j)
endpardo i, j
endsial
)");
    FAIL() << "expected InfeasibleError";
  } catch (const InfeasibleError& error) {
    EXPECT_NE(std::string(error.what()).find("workers"), std::string::npos);
  }
}

TEST(SipErrorTest, DryRunOnlySkipsExecution) {
  SipConfig config = base_config();
  config.dry_run_only = true;
  Sip sip(config);
  const RunResult result = sip.run_source(R"(
sial test
moindex i = 1, n
distributed d(i)
temp t(i)
pardo i
  t(i) = 1.0
  put d(i) = t(i)
endpardo i
endsial
)");
  // Nothing executed: no scalars collected, but the dry run is filled in.
  EXPECT_TRUE(result.scalars.empty());
  EXPECT_GT(result.dry_run.per_worker_bytes(), 0u);
}

TEST(SipErrorTest, ErrorInOneWorkerAbortsWholeLaunch) {
  // Only iteration (1) divides by zero; other workers' iterations are
  // fine, yet the whole run must fail.
  expect_error(R"(
moindex i = 1, n
scalar x
pardo i
  if i == 1
    x = 1.0 / 0.0
  endif
endpardo i
)",
               "division");
}

TEST(SipErrorTest, ErrorMessageCarriesSourceLine) {
  SipConfig config = base_config();
  Sip sip(config);
  try {
    sip.run_source("sial test\nscalar x\nx = 1.0 / 0.0\nendsial\n");
    FAIL();
  } catch (const RuntimeError& error) {
    EXPECT_NE(std::string(error.what()).find("line 3"), std::string::npos)
        << error.what();
  }
}

TEST(SipErrorTest, IndexValueOutsideArrayGrid) {
  // h ranges past the extent of the array it addresses; the resolver
  // rejects the access at runtime with a named index and array.
  SipConfig config = base_config();
  config.constants["m"] = 18;
  expect_error(R"(
moindex i = 1, n
moindex h = 1, m
temp t(i)
do h
  t(h) = 1.0
enddo h
)",
               "outside", config);
}

TEST(SipErrorTest, PardoNestedViaProcedureRejectedAtRuntime) {
  // Syntactic nesting is a compile error; nesting smuggled through a
  // procedure call must still fail, at runtime.
  expect_error(R"(
moindex i = 1, n
moindex j = 1, n
scalar x
proc inner_loop
  pardo j
    x += 1.0
  endpardo j
endproc
pardo i
  call inner_loop
endpardo i
)",
               "nested");
}

TEST(SipErrorTest, CompileErrorsPropagateFromRunSource) {
  Sip sip(base_config());
  EXPECT_THROW(sip.run_source("sial test\nbogus statement here\nendsial\n"),
               CompileError);
}

TEST(SipErrorTest, MissingConstantFailsBeforeLaunch) {
  SipConfig config = base_config();
  config.constants.clear();
  Sip sip(config);
  EXPECT_THROW(
      sip.run_source("sial test\nmoindex i = 1, n\nendsial\n"), Error);
}

}  // namespace
}  // namespace sia::sip
