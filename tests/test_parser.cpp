// Unit tests for the SIAL parser.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sial/parser.hpp"

namespace sia::sial {
namespace {

ProgramAst parse(const std::string& body) {
  return parse_sial("sial test\n" + body + "\nendsial\n");
}

TEST(ParserTest, ProgramHeaderAndName) {
  const ProgramAst ast = parse_sial("sial my_prog\nendsial\n");
  EXPECT_EQ(ast.name, "my_prog");
  EXPECT_TRUE(ast.main.stmts.empty());
}

TEST(ParserTest, MissingHeaderThrows) {
  EXPECT_THROW(parse_sial("endsial\n"), CompileError);
}

TEST(ParserTest, ContentAfterEndsialThrows) {
  EXPECT_THROW(parse_sial("sial p\nendsial\nscalar x\n"), CompileError);
}

TEST(ParserTest, IndexDeclarations) {
  const ProgramAst ast = parse(R"(
aoindex mu = 1, norb
moindex i = 1, nocc
index k = 1, 10
subindex ii of i
)");
  ASSERT_EQ(ast.indices.size(), 4u);
  EXPECT_EQ(ast.indices[0].type, IndexType::kAo);
  EXPECT_EQ(ast.indices[1].type, IndexType::kMo);
  EXPECT_EQ(ast.indices[2].type, IndexType::kSimple);
  EXPECT_EQ(ast.indices[3].type, IndexType::kSub);
  EXPECT_EQ(ast.indices[3].super, "i");
}

TEST(ParserTest, IndexBoundsWithArithmetic) {
  const ProgramAst ast = parse("moindex a = nocc+1, norb\n");
  EXPECT_EQ(ast.indices[0].low.kind, IntExpr::Kind::kAdd);
  EXPECT_EQ(ast.indices[0].high.kind, IntExpr::Kind::kConstant);
}

TEST(ParserTest, SubindexOfUnknownIndexThrows) {
  EXPECT_THROW(parse("subindex ii of nothing\n"), CompileError);
}

TEST(ParserTest, ArrayDeclarationsAllKinds) {
  const ProgramAst ast = parse(R"(
aoindex mu = 1, norb
aoindex nu = 1, norb
static s(mu,nu)
temp t(mu,nu)
local l(mu,nu)
distributed d(mu,nu)
served v(mu,nu)
)");
  ASSERT_EQ(ast.arrays.size(), 5u);
  EXPECT_EQ(ast.arrays[0].kind, ArrayKind::kStatic);
  EXPECT_EQ(ast.arrays[4].kind, ArrayKind::kServed);
  EXPECT_EQ(ast.arrays[0].indices,
            (std::vector<std::string>{"mu", "nu"}));
}

TEST(ParserTest, ArrayWithUndeclaredIndexThrows) {
  EXPECT_THROW(parse("temp t(zz)\n"), CompileError);
}

TEST(ParserTest, RedeclarationThrows) {
  EXPECT_THROW(parse("scalar x\nscalar x\n"), CompileError);
}

TEST(ParserTest, PardoWithWhereClauses) {
  const ProgramAst ast = parse(R"(
aoindex mu = 1, norb
aoindex nu = 1, norb
pardo mu, nu where mu < nu where nu <= 4
endpardo mu, nu
)");
  const auto& pardo = std::get<PardoStmt>(ast.main.stmts[0]->node);
  EXPECT_EQ(pardo.indices, (std::vector<std::string>{"mu", "nu"}));
  ASSERT_EQ(pardo.wheres.size(), 2u);
  EXPECT_EQ(pardo.wheres[0].lhs, "mu");
  EXPECT_EQ(pardo.wheres[0].op, CmpOp::kLt);
  EXPECT_EQ(pardo.wheres[0].rhs_index, "nu");
  EXPECT_TRUE(pardo.wheres[1].rhs_const.has_value());
}

TEST(ParserTest, DoAndDoInForms) {
  const ProgramAst ast = parse(R"(
moindex i = 1, nocc
subindex ii of i
do i
  do ii in i
  enddo ii
enddo i
)");
  const auto& outer = std::get<DoStmt>(ast.main.stmts[0]->node);
  EXPECT_EQ(outer.index, "i");
  EXPECT_TRUE(outer.super.empty());
  const auto& inner = std::get<DoStmt>(outer.body.stmts[0]->node);
  EXPECT_EQ(inner.index, "ii");
  EXPECT_EQ(inner.super, "i");
  EXPECT_FALSE(inner.parallel);
}

TEST(ParserTest, PardoInForm) {
  const ProgramAst ast = parse(R"(
moindex i = 1, nocc
subindex ii of i
do i
  pardo ii in i
  endpardo ii
enddo i
)");
  const auto& outer = std::get<DoStmt>(ast.main.stmts[0]->node);
  const auto& inner = std::get<DoStmt>(outer.body.stmts[0]->node);
  EXPECT_TRUE(inner.parallel);
  EXPECT_EQ(inner.super, "i");
}

TEST(ParserTest, IfElse) {
  const ProgramAst ast = parse(R"(
scalar x
if x < 1.0
  x = 2.0
else
  x = 3.0
endif
)");
  const auto& node = std::get<IfStmt>(ast.main.stmts[0]->node);
  EXPECT_EQ(node.cond->kind, Expr::Kind::kCompare);
  EXPECT_EQ(node.then_body.stmts.size(), 1u);
  EXPECT_EQ(node.else_body.stmts.size(), 1u);
}

TEST(ParserTest, GetPutPrepareRequest) {
  const ProgramAst ast = parse(R"(
moindex i = 1, nocc
distributed d(i)
served s(i)
temp t(i)
do i
  get d(i)
  put d(i) = t(i)
  put d(i) += t(i)
  request s(i)
  prepare s(i) = t(i)
  prepare s(i) += t(i)
enddo i
)");
  const auto& body = std::get<DoStmt>(ast.main.stmts[0]->node).body;
  EXPECT_TRUE(std::holds_alternative<GetStmt>(body.stmts[0]->node));
  EXPECT_FALSE(std::get<PutStmt>(body.stmts[1]->node).accumulate);
  EXPECT_TRUE(std::get<PutStmt>(body.stmts[2]->node).accumulate);
  EXPECT_TRUE(std::holds_alternative<RequestStmt>(body.stmts[3]->node));
  EXPECT_FALSE(std::get<PrepareStmt>(body.stmts[4]->node).accumulate);
  EXPECT_TRUE(std::get<PrepareStmt>(body.stmts[5]->node).accumulate);
}

TEST(ParserTest, AllocateWithWildcard) {
  const ProgramAst ast = parse(R"(
moindex i = 1, nocc
moindex j = 1, nocc
local l(i,j)
do j
  allocate l(*,j)
  deallocate l(*,j)
enddo j
)");
  const auto& body = std::get<DoStmt>(ast.main.stmts[0]->node).body;
  const auto& alloc = std::get<AllocateStmt>(body.stmts[0]->node);
  EXPECT_EQ(alloc.ref.indices, (std::vector<std::string>{"*", "j"}));
}

TEST(ParserTest, WildcardOutsideAllocateThrows) {
  EXPECT_THROW(parse(R"(
moindex i = 1, nocc
temp t(i)
do i
  get t(*)
enddo i
)"),
               CompileError);
}

TEST(ParserTest, AssignmentForms) {
  const ProgramAst ast = parse(R"(
moindex i = 1, nocc
moindex j = 1, nocc
moindex k = 1, nocc
temp a(i,j)
temp b(j,k)
temp c(i,k)
scalar x
do i
do j
do k
  a(i,j) = 0.0
  a(i,j) += x * 2.0
  c(i,k) = a(i,j) * b(j,k)
  c(i,k) += a(i,j) * b(j,k)
  a(i,j) = 2.0 * b(j,i)
  x = a(i,j) * a(i,j)
  x += 1.0 / 2.0
enddo k
enddo j
enddo i
)");
  const auto& b0 = std::get<DoStmt>(ast.main.stmts[0]->node).body;
  const auto& b1 = std::get<DoStmt>(b0.stmts[0]->node).body;
  const auto& body = std::get<DoStmt>(b1.stmts[0]->node).body;

  const auto& fill = std::get<AssignStmt>(body.stmts[0]->node);
  EXPECT_EQ(fill.rhs, AssignStmt::Rhs::kScalarExpr);
  const auto& contract = std::get<AssignStmt>(body.stmts[2]->node);
  EXPECT_EQ(contract.rhs, AssignStmt::Rhs::kBlockBinary);
  EXPECT_EQ(contract.block_op, BinOp::kMul);
  const auto& contract_acc = std::get<AssignStmt>(body.stmts[3]->node);
  EXPECT_EQ(contract_acc.op, AssignStmt::Op::kPlusAssign);
  const auto& scaled = std::get<AssignStmt>(body.stmts[4]->node);
  EXPECT_EQ(scaled.rhs, AssignStmt::Rhs::kScaledBlock);
  const auto& dot = std::get<AssignStmt>(body.stmts[5]->node);
  EXPECT_EQ(dot.rhs, AssignStmt::Rhs::kScalarExpr);
  EXPECT_EQ(dot.scalar->kind, Expr::Kind::kBlockDot);
}

TEST(ParserTest, BlockAddSub) {
  const ProgramAst ast = parse(R"(
moindex i = 1, nocc
temp a(i)
temp b(i)
temp c(i)
do i
  c(i) = a(i) + b(i)
  c(i) = a(i) - b(i)
enddo i
)");
  const auto& body = std::get<DoStmt>(ast.main.stmts[0]->node).body;
  EXPECT_EQ(std::get<AssignStmt>(body.stmts[0]->node).block_op, BinOp::kAdd);
  EXPECT_EQ(std::get<AssignStmt>(body.stmts[1]->node).block_op, BinOp::kSub);
}

TEST(ParserTest, ProcAndCall) {
  const ProgramAst ast = parse(R"(
scalar x
proc setx
  x = 5.0
endproc
call setx
)");
  ASSERT_EQ(ast.procs.size(), 1u);
  EXPECT_EQ(ast.procs[0].name, "setx");
  const auto& call = std::get<CallStmt>(ast.main.stmts[0]->node);
  EXPECT_EQ(call.proc, "setx");
}

TEST(ParserTest, CallUndeclaredProcThrows) {
  EXPECT_THROW(parse("call nothing\n"), CompileError);
}

TEST(ParserTest, ExecuteArguments) {
  const ProgramAst ast = parse(R"(
moindex i = 1, nocc
temp t(i)
scalar s
do i
  execute my_op t(i) s "label" 3.5 7
enddo i
)");
  const auto& body = std::get<DoStmt>(ast.main.stmts[0]->node).body;
  const auto& exec = std::get<ExecuteStmt>(body.stmts[0]->node);
  EXPECT_EQ(exec.name, "my_op");
  ASSERT_EQ(exec.args.size(), 5u);
  EXPECT_EQ(exec.args[0].kind, ExecArg::Kind::kBlock);
  EXPECT_EQ(exec.args[1].kind, ExecArg::Kind::kScalar);
  EXPECT_EQ(exec.args[2].kind, ExecArg::Kind::kString);
  EXPECT_EQ(exec.args[3].kind, ExecArg::Kind::kNumber);
  EXPECT_DOUBLE_EQ(exec.args[4].number, 7.0);
}

TEST(ParserTest, BarriersCollectivePrint) {
  const ProgramAst ast = parse(R"(
scalar a
scalar b
sip_barrier
server_barrier
collective a += b
print a
println "text"
)");
  EXPECT_FALSE(std::get<BarrierStmt>(ast.main.stmts[0]->node).server);
  EXPECT_TRUE(std::get<BarrierStmt>(ast.main.stmts[1]->node).server);
  const auto& coll = std::get<CollectiveStmt>(ast.main.stmts[2]->node);
  EXPECT_EQ(coll.dst, "a");
  EXPECT_EQ(coll.src, "b");
  EXPECT_NE(std::get<PrintStmt>(ast.main.stmts[3]->node).value, nullptr);
  EXPECT_EQ(std::get<PrintStmt>(ast.main.stmts[4]->node).text, "text");
}

TEST(ParserTest, CheckpointRestore) {
  const ProgramAst ast = parse(R"(
moindex i = 1, nocc
distributed d(i)
checkpoint d "ck1"
restore d "ck1"
)");
  EXPECT_FALSE(std::get<CheckpointStmt>(ast.main.stmts[0]->node).is_restore);
  EXPECT_TRUE(std::get<CheckpointStmt>(ast.main.stmts[1]->node).is_restore);
}

TEST(ParserTest, DeclarationInsideLoopThrows) {
  EXPECT_THROW(parse(R"(
moindex i = 1, nocc
do i
  scalar x
enddo i
)"),
               CompileError);
}

TEST(ParserTest, AssignToIndexThrows) {
  EXPECT_THROW(parse("moindex i = 1, nocc\ni = 3\n"), CompileError);
}

TEST(ParserTest, ExpressionPrecedence) {
  const ProgramAst ast = parse("scalar x\nx = 1.0 + 2.0 * 3.0\n");
  const auto& assign = std::get<AssignStmt>(ast.main.stmts[0]->node);
  ASSERT_EQ(assign.scalar->kind, Expr::Kind::kBinary);
  EXPECT_EQ(assign.scalar->binop, BinOp::kAdd);
  EXPECT_EQ(assign.scalar->rhs->binop, BinOp::kMul);
}

TEST(ParserTest, FunctionCalls) {
  const ProgramAst ast = parse("scalar x\nx = sqrt(abs(x) + exp(1.0))\n");
  const auto& assign = std::get<AssignStmt>(ast.main.stmts[0]->node);
  EXPECT_EQ(assign.scalar->kind, Expr::Kind::kFunc);
  EXPECT_EQ(assign.scalar->name, "sqrt");
}

TEST(ParserTest, UnterminatedLoopThrows) {
  EXPECT_THROW(parse("moindex i = 1, nocc\ndo i\n"), CompileError);
}

TEST(ParserTest, ExitStatement) {
  const ProgramAst ast = parse(R"(
moindex i = 1, nocc
do i
  exit
enddo i
)");
  const auto& body = std::get<DoStmt>(ast.main.stmts[0]->node).body;
  EXPECT_TRUE(std::holds_alternative<ExitStmt>(body.stmts[0]->node));
}

}  // namespace
}  // namespace sia::sial
