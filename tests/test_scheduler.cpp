// Unit tests for the guided pardo chunk scheduler.
#include <gtest/gtest.h>

#include "sip/scheduler.hpp"

namespace sia::sip {
namespace {

TEST(GuidedScheduleTest, CoversEveryPositionExactlyOnce) {
  GuidedSchedule schedule(100, 4, 2, 1);
  std::vector<int> seen(100, 0);
  while (true) {
    const auto [begin, end] = schedule.next_chunk();
    if (begin >= end) break;
    for (std::int64_t p = begin; p < end; ++p) {
      seen[static_cast<std::size_t>(p)] += 1;
    }
  }
  for (const int count : seen) EXPECT_EQ(count, 1);
  EXPECT_TRUE(schedule.exhausted());
}

TEST(GuidedScheduleTest, ChunkSizesDecrease) {
  GuidedSchedule schedule(1000, 4, 2, 1);
  std::int64_t previous = 1 << 30;
  while (true) {
    const auto [begin, end] = schedule.next_chunk();
    if (begin >= end) break;
    const std::int64_t size = end - begin;
    EXPECT_LE(size, previous);
    previous = size;
  }
}

TEST(GuidedScheduleTest, FirstChunkIsGuidedFraction) {
  GuidedSchedule schedule(800, 4, 2, 1);
  const auto [begin, end] = schedule.next_chunk();
  EXPECT_EQ(begin, 0);
  EXPECT_EQ(end - begin, 800 / (2 * 4));
}

TEST(GuidedScheduleTest, MinChunkRespected) {
  GuidedSchedule schedule(10, 4, 2, 3);
  const auto [begin, end] = schedule.next_chunk();
  EXPECT_EQ(end - begin, 3);
}

TEST(GuidedScheduleTest, MinChunkClampedToFairShare) {
  // A min_chunk larger than the fair share must not let the first
  // requester walk off with nearly the whole iteration space (the skew
  // that forces work stealing downstream): chunks honor min_chunk only
  // up to ceil(remaining / workers).
  GuidedSchedule schedule(100, 4, 2, 60);
  const auto [b0, e0] = schedule.next_chunk();
  EXPECT_EQ(e0 - b0, 25);  // ceil(100/4), not 60
  const auto [b1, e1] = schedule.next_chunk();
  EXPECT_EQ(e1 - b1, 19);  // ceil(75/4)
}

TEST(GuidedScheduleTest, FairShareClampStillCoversEverything) {
  GuidedSchedule schedule(100, 4, 2, 60);
  std::vector<int> seen(100, 0);
  while (true) {
    const auto [begin, end] = schedule.next_chunk();
    if (begin >= end) break;
    EXPECT_GE(end - begin, 1);
    for (std::int64_t p = begin; p < end; ++p) {
      seen[static_cast<std::size_t>(p)] += 1;
    }
  }
  for (const int count : seen) EXPECT_EQ(count, 1);
  EXPECT_TRUE(schedule.exhausted());
}

TEST(GuidedScheduleTest, DefaultMinChunkUnaffectedByClamp) {
  // With min_chunk at its default the clamp never binds: the guided
  // fraction is already below the fair share.
  GuidedSchedule schedule(800, 4, 2, 1);
  const auto [begin, end] = schedule.next_chunk();
  EXPECT_EQ(end - begin, 800 / (2 * 4));
}

TEST(GuidedScheduleTest, EmptySpaceIsImmediatelyDone) {
  GuidedSchedule schedule(0, 4, 2, 1);
  const auto [begin, end] = schedule.next_chunk();
  EXPECT_EQ(begin, end);
  EXPECT_TRUE(schedule.exhausted());
}

TEST(GuidedScheduleTest, DoneRepeatedlyAfterExhaustion) {
  GuidedSchedule schedule(3, 2, 2, 1);
  while (true) {
    const auto [begin, end] = schedule.next_chunk();
    if (begin >= end) break;
  }
  for (int k = 0; k < 3; ++k) {
    const auto [begin, end] = schedule.next_chunk();
    EXPECT_EQ(begin, end);
  }
}

TEST(ScheduleTableTest, CreatesPerInstance) {
  ScheduleTable table(2, 2, 1);
  bool mismatch = false;
  GuidedSchedule* first = table.get_or_create(0, 0, 10, &mismatch);
  GuidedSchedule* second = table.get_or_create(0, 1, 10, &mismatch);
  EXPECT_NE(first, second);
  EXPECT_FALSE(mismatch);
  EXPECT_EQ(table.active(), 2u);
}

TEST(ScheduleTableTest, SameKeyReturnsSameSchedule) {
  ScheduleTable table(2, 2, 1);
  bool mismatch = false;
  GuidedSchedule* a = table.get_or_create(3, 7, 10, &mismatch);
  GuidedSchedule* b = table.get_or_create(3, 7, 10, &mismatch);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(mismatch);
}

TEST(ScheduleTableTest, TotalMismatchDetected) {
  ScheduleTable table(2, 2, 1);
  bool mismatch = false;
  table.get_or_create(0, 0, 10, &mismatch);
  EXPECT_FALSE(mismatch);
  table.get_or_create(0, 0, 12, &mismatch);
  EXPECT_TRUE(mismatch);
}

TEST(ScheduleTableTest, RetireAfterAllWorkers) {
  ScheduleTable table(2, 2, 1);
  bool mismatch = false;
  table.get_or_create(0, 0, 10, &mismatch);
  table.retire(0, 0);
  EXPECT_EQ(table.active(), 1u);  // one worker still running
  table.retire(0, 0);
  EXPECT_EQ(table.active(), 0u);
}

TEST(ScheduleTableTest, TwoWorkersDrainEverything) {
  // Simulate two workers pulling chunks concurrently from one schedule.
  ScheduleTable table(2, 2, 1);
  bool mismatch = false;
  std::vector<int> seen(64, 0);
  bool done[2] = {false, false};
  int turn = 0;
  while (!done[0] || !done[1]) {
    const int w = turn++ % 2;
    if (done[w]) continue;
    GuidedSchedule* schedule = table.get_or_create(0, 0, 64, &mismatch);
    const auto [begin, end] = schedule->next_chunk();
    if (begin >= end) {
      done[w] = true;
      table.retire(0, 0);
      continue;
    }
    for (std::int64_t p = begin; p < end; ++p) {
      seen[static_cast<std::size_t>(p)] += 1;
    }
  }
  for (const int count : seen) EXPECT_EQ(count, 1);
  EXPECT_EQ(table.active(), 0u);
}

}  // namespace
}  // namespace sia::sip
