// Wire-codec tests for the socket fabric framing (msg/frame.hpp) and the
// reconnect path of the loopback SocketFabric: randomized round-trips,
// rejection of truncated and corrupted frames, and the end-to-end
// exactly-once guarantee (reliable layer + sequencer) across a transport
// reset mid-stream.
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <random>
#include <thread>
#include <vector>

#include "block/block.hpp"
#include "msg/fabric.hpp"
#include "msg/frame.hpp"
#include "msg/reliable.hpp"
#include "msg/socket_fabric.hpp"
#include "msg/tags.hpp"

namespace sia::msg {
namespace {

Message random_message(std::mt19937& rng) {
  std::uniform_int_distribution<int> small(0, 6);
  std::uniform_int_distribution<int> word(-1000000, 1000000);
  std::uniform_real_distribution<double> real(-1e6, 1e6);
  Message message;
  message.src = small(rng);
  message.tag = word(rng);
  message.seq = static_cast<std::uint64_t>(word(rng)) << 20;
  message.ack = static_cast<std::uint64_t>(word(rng));
  const int headers = small(rng);
  for (int i = 0; i < headers; ++i) message.header.push_back(word(rng));
  const int doubles = small(rng);
  for (int i = 0; i < doubles; ++i) message.data.push_back(real(rng));
  if (small(rng) >= 3) {
    std::uniform_int_distribution<int> rank_dist(1, 4);
    std::uniform_int_distribution<int> extent_dist(1, 5);
    const int rank = rank_dist(rng);
    std::vector<int> extents;
    for (int d = 0; d < rank; ++d) extents.push_back(extent_dist(rng));
    BlockShape shape(std::span<const int>(extents.data(), extents.size()));
    auto block = std::make_shared<Block>(shape);
    for (double& v : block->data()) v = real(rng);
    message.block = std::move(block);
  }
  return message;
}

void expect_equal(const Message& want, const DecodedFrame& got, int dst) {
  EXPECT_EQ(got.kind, FrameKind::kMessage);
  EXPECT_EQ(got.dst, dst);
  EXPECT_EQ(got.message.src, want.src);
  EXPECT_EQ(got.message.tag, want.tag);
  EXPECT_EQ(got.message.seq, want.seq);
  EXPECT_EQ(got.message.ack, want.ack);
  EXPECT_EQ(got.message.header, want.header);
  EXPECT_EQ(got.message.data, want.data);
  ASSERT_EQ(got.message.block != nullptr, want.block != nullptr);
  if (want.block) {
    ASSERT_EQ(got.message.block->size(), want.block->size());
    // The decoded block is a fresh heap block (the single-copy
    // downgrade), never the sender's storage.
    EXPECT_NE(got.message.block.get(), want.block.get());
    for (std::size_t i = 0; i < want.block->size(); ++i) {
      EXPECT_EQ(got.message.block->data()[i], want.block->data()[i]);
    }
  }
}

TEST(FrameCodecTest, RandomizedRoundTrip) {
  std::mt19937 rng(20260808);
  for (int trial = 0; trial < 300; ++trial) {
    const Message message = random_message(rng);
    const int dst = trial % 7;
    std::vector<std::uint8_t> bytes;
    encode_message_frame(message, dst, bytes);
    DecodedFrame decoded;
    ASSERT_EQ(decode_frame(bytes, &decoded), DecodeStatus::kOk)
        << "trial " << trial;
    expect_equal(message, decoded, dst);
  }
}

TEST(FrameCodecTest, HelloRoundTrip) {
  std::vector<std::uint8_t> bytes;
  encode_hello_frame(17, bytes);
  DecodedFrame decoded;
  ASSERT_EQ(decode_frame(bytes, &decoded), DecodeStatus::kOk);
  EXPECT_EQ(decoded.kind, FrameKind::kHello);
  EXPECT_EQ(decoded.hello_rank, 17);
}

TEST(FrameCodecTest, EveryTruncationRejected) {
  std::mt19937 rng(7);
  Message message = random_message(rng);
  message.header = {1, 2, 3};
  message.data = {4.0, 5.0};
  std::vector<std::uint8_t> bytes;
  encode_message_frame(message, 1, bytes);
  ASSERT_GT(bytes.size(), kFramePrologBytes + kFrameChecksumBytes);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    std::vector<std::uint8_t> prefix(bytes.begin(), bytes.begin() + cut);
    DecodedFrame decoded;
    EXPECT_NE(decode_frame(prefix, &decoded), DecodeStatus::kOk)
        << "truncation at byte " << cut << " decoded";
  }
}

TEST(FrameCodecTest, GarbageHeaderRejected) {
  std::mt19937 rng(11);
  Message message = random_message(rng);
  std::vector<std::uint8_t> bytes;
  encode_message_frame(message, 2, bytes);

  auto stamp = [&](std::size_t at, std::uint32_t value) {
    std::vector<std::uint8_t> copy = bytes;
    std::memcpy(copy.data() + at, &value, sizeof(value));
    return copy;
  };
  DecodedFrame decoded;
  EXPECT_EQ(decode_frame(stamp(0, 0xDEADBEEF), &decoded),
            DecodeStatus::kBadMagic);
  // Version is a u16 at offset 8; stamping 32 bits also clears `kind`,
  // which decode_prolog does not inspect before the version check.
  EXPECT_EQ(decode_frame(stamp(8, 0x7FFF), &decoded),
            DecodeStatus::kBadVersion);
  EXPECT_EQ(decode_frame(stamp(4, kFrameMaxPayload + 1), &decoded),
            DecodeStatus::kBadLength);

  // Pure noise must never decode, whatever its length.
  std::uniform_int_distribution<int> byte(0, 255);
  for (int trial = 0; trial < 100; ++trial) {
    std::uniform_int_distribution<int> len(0, 256);
    std::vector<std::uint8_t> noise(static_cast<std::size_t>(len(rng)));
    for (auto& b : noise) b = static_cast<std::uint8_t>(byte(rng));
    EXPECT_NE(decode_frame(noise, &decoded), DecodeStatus::kOk);
  }
}

TEST(FrameCodecTest, CorruptedBytesRejected) {
  std::mt19937 rng(13);
  Message message = random_message(rng);
  message.data = {1.5, -2.5, 3.5};
  std::vector<std::uint8_t> bytes;
  encode_message_frame(message, 3, bytes);
  // Flip every byte in turn, except the reserved prolog word (bytes
  // 12..15), which the codec deliberately ignores.
  for (std::size_t at = 0; at < bytes.size(); ++at) {
    if (at >= 12 && at < kFramePrologBytes) continue;
    std::vector<std::uint8_t> copy = bytes;
    copy[at] ^= 0x40;
    DecodedFrame decoded;
    EXPECT_NE(decode_frame(copy, &decoded), DecodeStatus::kOk)
        << "flip at byte " << at << " went undetected";
  }
}

TEST(FrameCodecTest, ChecksumCatchesPayloadSwap) {
  // Two frames with swapped payloads but original checksums must both be
  // rejected — the checksum binds payload bytes, not just length.
  Message a, b;
  a.tag = 1;
  a.data = {1.0, 2.0};
  b.tag = 2;
  b.data = {3.0, 4.0};
  std::vector<std::uint8_t> fa, fb;
  encode_message_frame(a, 1, fa);
  encode_message_frame(b, 1, fb);
  ASSERT_EQ(fa.size(), fb.size());
  const std::size_t payload = fa.size() - kFramePrologBytes - kFrameChecksumBytes;
  std::vector<std::uint8_t> franken = fa;
  std::memcpy(franken.data() + kFramePrologBytes,
              fb.data() + kFramePrologBytes, payload);
  DecodedFrame decoded;
  EXPECT_EQ(decode_frame(franken, &decoded), DecodeStatus::kBadChecksum);
}

// Exactly-once accumulate across a transport reset: sender-side
// ReliableChannel + receiver-side PeerSequencer over a loopback
// SocketFabric whose connection is hard-reset mid-stream. Frames lost in
// the reset are retransmitted; duplicates created by retransmit racing
// the original are dropped by the sequencer — the applied sum must come
// out as if the wire were perfect.
TEST(FrameCodecTest, ReconnectMidStreamAppliesExactlyOnce) {
  SocketOptions options;
  options.role = SocketOptions::Role::kLoopback;
  SocketFabric fabric(3, options);

  ReliableChannel channel(&fabric, /*my_rank=*/1, /*retry_timeout_ms=*/25,
                          /*retry_max=*/40);
  PeerSequencer sequencer;

  constexpr int kMessages = 24;
  double applied_sum = 0.0;
  int applied_count = 0;
  auto pump_receiver = [&] {
    while (auto got = fabric.try_recv(2)) {
      PeerSequencer::Admit admit = sequencer.admit_ordered(std::move(*got));
      const bool ack_needed = admit.duplicate || !admit.deliver.empty();
      for (Message& m : admit.deliver) {
        applied_sum += m.data.at(0);
        ++applied_count;
      }
      if (ack_needed && applied_count > 0) {
        // Cumulative ack of the applied prefix. The ordered stream
        // delivers in sequence, so the applied seqs are exactly
        // 1..applied_count; duplicates re-ack the same prefix so the
        // sender clears entries whose first ack died in the reset.
        Message ack;
        ack.tag = kProtoAck;
        ack.ack = static_cast<std::uint64_t>(applied_count);
        fabric.send(2, 1, std::move(ack));
      }
    }
  };
  auto pump_sender_acks = [&] {
    while (auto got = fabric.try_recv(1)) {
      if (got->tag == kProtoAck) {
        // Cumulative ack: clear everything at or below.
        for (std::uint64_t s = 1; s <= got->ack; ++s) channel.on_ack(2, s);
      }
    }
  };

  double expected_sum = 0.0;
  for (int i = 0; i < kMessages; ++i) {
    Message message;
    message.tag = kBlockPutAcc;
    message.data = {static_cast<double>(i + 1)};
    expected_sum += static_cast<double>(i + 1);
    channel.send_ordered(2, std::move(message));
    if (i == kMessages / 3 || i == 2 * kMessages / 3) {
      // Hard-reset the transport as a peer crash would; queued frames
      // die with the socket.
      fabric.debug_break_connection();
    }
    pump_receiver();
    pump_sender_acks();
  }

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (!channel.idle() || applied_count < kMessages) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "applied " << applied_count << "/" << kMessages << ", unacked "
        << channel.unacked_count();
    channel.poll();  // retransmits overdue entries
    pump_receiver();
    pump_sender_acks();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  EXPECT_EQ(applied_count, kMessages);
  EXPECT_EQ(applied_sum, expected_sum);
  fabric.stop();
  // The reset forced at least one reconnect; any duplicate deliveries the
  // retransmits caused were absorbed by the sequencer (duplicates_dropped
  // counts them), never applied — applied_count above proves it.
  EXPECT_GE(fabric.reconnects(), 1);
}

}  // namespace
}  // namespace sia::msg
