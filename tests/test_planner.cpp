// Launch-time planner and guided-schedule work stealing.
//
// Covers the closed autotuning loop (deterministic DES sweep, pinned
// knobs, serial-baseline floor, calibration persistence and learning)
// and the runtime half: stealing the tail of a straggler's chunk must
// leave every result bit-identical, including under chaos fault plans.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "common/config.hpp"
#include "sial/compiler.hpp"
#include "sial/opt/optimizer.hpp"
#include "sip/launch.hpp"
#include "sip/planner.hpp"

namespace sia::sip {
namespace {

// A small but non-trivial program for the sweep: two pardo phases with
// distributed traffic and a contraction, so the workload model has real
// flops and fetch volumes to trade off.
std::string sweep_source() {
  return R"SIAL(
sial sweep_probe
moindex i = 1, n
moindex j = 1, n
moindex k = 1, n
distributed a(i,k)
distributed c(i,j)
temp t(i,k)
temp u(k,j)
temp p(i,j)
temp acc(i,j)
scalar lsum
scalar total

pardo i, k
  execute fill_coords t(i,k)
  put a(i,k) = t(i,k)
endpardo i, k
sip_barrier

# The checksum is ||A*U||_F^2 — a property of the matrices, not of the
# block decomposition, so it survives the planner changing the segment
# size (up to rounding).
pardo i, j
  acc(i,j) = 0.0
  do k
    get a(i,k)
    execute fill_coords u(k,j)
    p(i,j) = a(i,k) * u(k,j)
    acc(i,j) += p(i,j)
  enddo k
  lsum += acc(i,j) * acc(i,j)
endpardo i, j
total = 0.0
collective total += lsum
endsial
)SIAL";
}

sial::CompiledProgram optimized_sweep(const SipConfig& config) {
  return sial::opt::optimize(sial::compile_sial(sweep_source()),
                             config.opt_level)
      .program;
}

SipConfig sweep_config() {
  SipConfig config;
  config.workers = 2;
  config.io_servers = 0;
  config.constants = {{"n", 24}};
  return config;
}

// ---------------------------------------------------------------------
// The sweep.

TEST(PlannerTest, SweepIsDeterministic) {
  const SipConfig base = sweep_config();
  const Calibration cal;
  const HostModel host{4};
  const sial::CompiledProgram program = optimized_sweep(base);
  const PlanChoice first = plan_launch(program, base, cal, host);
  const PlanChoice second = plan_launch(program, base, cal, host);
  EXPECT_EQ(first.summary, second.summary);
  EXPECT_EQ(first.candidates, second.candidates);
  EXPECT_DOUBLE_EQ(first.predicted_seconds, second.predicted_seconds);
  EXPECT_EQ(first.config.default_segment, second.config.default_segment);
  EXPECT_EQ(first.config.worker_threads, second.config.worker_threads);
  EXPECT_EQ(first.config.prefetch_depth, second.config.prefetch_depth);
  EXPECT_GT(first.candidates, 1);
}

TEST(PlannerTest, OneCoreHostChoosesSerialEngine) {
  // The BENCH_pardo regression: on a 1-core host the windowed executor
  // only adds synchronization and oversubscription cost, so the planner
  // must keep the serial interpreter.
  const SipConfig base = sweep_config();
  const PlanChoice choice =
      plan_launch(optimized_sweep(base), base, Calibration{}, HostModel{1});
  EXPECT_EQ(choice.config.worker_threads, 0);
}

TEST(PlannerTest, NeverPredictedSlowerThanSerial) {
  const SipConfig base = sweep_config();
  for (const int cores : {1, 2, 8}) {
    const PlanChoice choice = plan_launch(optimized_sweep(base), base,
                                          Calibration{}, HostModel{cores});
    ASSERT_TRUE(std::isfinite(choice.predicted_seconds)) << cores;
    if (std::isfinite(choice.baseline_seconds)) {
      EXPECT_LE(choice.predicted_seconds, choice.baseline_seconds)
          << cores << " cores";
    }
  }
}

TEST(PlannerTest, PinnedKnobsAreNeverOverridden) {
  SipConfig base = sweep_config();
  base.worker_threads = 2;     // differs from default -1 -> pinned
  base.prefetch_depth = 7;     // differs from default 2 -> pinned
  base.default_segment = 6;    // differs from the default -> pinned
  const PlanChoice choice =
      plan_launch(optimized_sweep(base), base, Calibration{}, HostModel{4});
  EXPECT_EQ(choice.config.worker_threads, 2);
  EXPECT_EQ(choice.config.prefetch_depth, 7);
  EXPECT_EQ(choice.config.default_segment, 6);
  const auto pinned_has = [&](const char* name) {
    for (const std::string& knob : choice.pinned) {
      if (knob == name) return true;
    }
    return false;
  };
  EXPECT_TRUE(pinned_has("worker_threads"));
  EXPECT_TRUE(pinned_has("prefetch_depth"));
  EXPECT_TRUE(pinned_has("segment"));
}

// ---------------------------------------------------------------------
// Calibration persistence and learning.

TEST(PlannerTest, CalibrationRoundTripsThroughDisk) {
  Calibration cal;
  cal.gemm_gflops = 17.25;
  cal.latency_s = 3.5e-6;
  cal.link_bw = 7.5e9;
  cal.disk_bw = 123e6;
  cal.time_scale = 0.625;
  cal.runs = 3;
  cal.last_error_percent = -12.5;
  const std::string path =
      (std::filesystem::temp_directory_path() / "sia_cal_roundtrip").string();
  ASSERT_TRUE(cal.save(path));
  const Calibration back = Calibration::load(path);
  EXPECT_DOUBLE_EQ(back.gemm_gflops, cal.gemm_gflops);
  EXPECT_DOUBLE_EQ(back.latency_s, cal.latency_s);
  EXPECT_DOUBLE_EQ(back.link_bw, cal.link_bw);
  EXPECT_DOUBLE_EQ(back.disk_bw, cal.disk_bw);
  EXPECT_DOUBLE_EQ(back.time_scale, cal.time_scale);
  EXPECT_EQ(back.runs, cal.runs);
  EXPECT_DOUBLE_EQ(back.last_error_percent, cal.last_error_percent);
  std::filesystem::remove(path);
}

TEST(PlannerTest, CorruptCalibrationFallsBackToDefaults) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "sia_cal_corrupt").string();
  {
    std::ofstream out(path, std::ios::trunc);
    out << "sia_calibration v1\ngemm_gflops banana\n";
  }
  const Calibration defaults;
  Calibration cal = Calibration::load(path);
  EXPECT_DOUBLE_EQ(cal.gemm_gflops, defaults.gemm_gflops);
  EXPECT_EQ(cal.runs, 0);
  // Wrong magic, negative constants, and a missing file all fall back.
  {
    std::ofstream out(path, std::ios::trunc);
    out << "not a calibration file\n";
  }
  cal = Calibration::load(path);
  EXPECT_EQ(cal.runs, 0);
  {
    std::ofstream out(path, std::ios::trunc);
    out << "sia_calibration v1\ngemm_gflops -4\n";
  }
  cal = Calibration::load(path);
  EXPECT_DOUBLE_EQ(cal.gemm_gflops, defaults.gemm_gflops);
  std::filesystem::remove(path);
  cal = Calibration::load(path);
  EXPECT_DOUBLE_EQ(cal.gemm_gflops, defaults.gemm_gflops);
}

TEST(PlannerTest, CalibrationUpdateShrinksModelError) {
  // With a stable actual time, the damped time_scale correction must
  // strictly shrink the prediction error run over run.
  Calibration cal;
  const double actual = 1.0;
  double predicted = 5.0;  // model 5x optimistic... err, pessimistic
  double previous_error = std::abs(predicted - actual);
  for (int run = 0; run < 4; ++run) {
    update_calibration(&cal, predicted, actual, 10.0, 0.0, 0, 0.0);
    // The next plan's raw model output is unchanged; only the bias
    // term moves, so the next prediction is raw * time_scale.
    predicted = 5.0 * cal.time_scale;
    const double error = std::abs(predicted - actual);
    EXPECT_LT(error, previous_error) << "run " << run;
    previous_error = error;
  }
  EXPECT_EQ(cal.runs, 4);
}

TEST(PlannerTest, MeasuredGemmRateIsPositive) {
  const double gflops = measure_gemm_gflops();
  EXPECT_GT(gflops, 0.0);
  EXPECT_LT(gflops, 10000.0);  // sanity: < 10 TFLOP/s on one core
}

// ---------------------------------------------------------------------
// End-to-end autotuned runs.

std::string temp_calibration_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(PlannerTest, AutotunedRunRecordsPlanAndPersistsCalibration) {
  const std::string cal_path = temp_calibration_path("sia_cal_e2e");
  std::filesystem::remove(cal_path);
  SipConfig config = sweep_config();
  config.autotune = true;
  config.calibration_file = cal_path;
  Sip sip(config);
  const RunResult result = sip.run_source(sweep_source());
  EXPECT_TRUE(result.profile.plan.planned);
  EXPECT_FALSE(result.profile.plan.calibrated);  // first run is cold
  EXPECT_GT(result.profile.plan.candidates, 0);
  EXPECT_GT(result.profile.plan.predicted_seconds, 0.0);
  EXPECT_GT(result.profile.plan.actual_seconds, 0.0);
  const Calibration cal = Calibration::load(cal_path);
  EXPECT_EQ(cal.runs, 1);

  // Second run sees the calibration and reports itself calibrated.
  Sip second(config);
  const RunResult again = second.run_source(sweep_source());
  EXPECT_TRUE(again.profile.plan.planned);
  EXPECT_TRUE(again.profile.plan.calibrated);
  EXPECT_EQ(Calibration::load(cal_path).runs, 2);
  std::filesystem::remove(cal_path);
}

TEST(PlannerTest, AutotunePreservesResults) {
  // The tuned run must compute the same answer as the untuned run (the
  // collective total is partition-independent only up to rounding, so
  // compare against a tolerance scaled to the value).
  SipConfig plain = sweep_config();
  Sip base_sip(plain);
  const double expected = base_sip.run_source(sweep_source()).scalar("total");

  const std::string cal_path = temp_calibration_path("sia_cal_results");
  std::filesystem::remove(cal_path);
  SipConfig tuned = sweep_config();
  tuned.autotune = true;
  tuned.calibration_file = cal_path;
  Sip sip(tuned);
  const double got = sip.run_source(sweep_source()).scalar("total");
  EXPECT_NEAR(got, expected, 1e-9 * std::abs(expected));
  std::filesystem::remove(cal_path);
}

class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_ = old != nullptr;
    if (had_) old_ = old;
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (had_) {
      ::setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  std::string old_;
  bool had_ = false;
};

TEST(PlannerTest, AutotuneEnvOverridesConfigBothWays) {
  {
    ScopedEnv env("SIA_AUTOTUNE", "0");
    SipConfig config = sweep_config();
    config.autotune = true;  // env wins: no planning
    Sip sip(config);
    const RunResult result = sip.run_source(sweep_source());
    EXPECT_FALSE(result.profile.plan.planned);
  }
  {
    ScopedEnv env("SIA_AUTOTUNE", "1");
    const std::string cal_path = temp_calibration_path("sia_cal_env");
    std::filesystem::remove(cal_path);
    SipConfig config = sweep_config();
    config.autotune = false;  // env wins: planning on
    config.calibration_file = cal_path;
    Sip sip(config);
    const RunResult result = sip.run_source(sweep_source());
    EXPECT_TRUE(result.profile.plan.planned);
    std::filesystem::remove(cal_path);
  }
}

// ---------------------------------------------------------------------
// Work stealing.

// A deliberately skewed pardo: segments are [48, 1], so iteration (1,1)
// carries a 48x48x48 contraction swept `reps` times while the other
// three iterations are slivers. min_chunk with the fair-share clamp
// hands worker 0 the two front (heavy-led) iterations in one chunk;
// worker 1 races through its own chunk and must steal the tail of
// worker 0's to balance. fill_coords writes integer elements and the
// final checksum is computed by a sequential do loop every worker
// executes in the same order, so the result is bitwise independent of
// which worker ran which iteration.
std::string skew_source() {
  return R"SIAL(
sial steal_skew
aoindex i = 1, n
aoindex j = 1, n
aoindex k = 1, n
index r = 1, reps
distributed c(i,j)
temp t(i,k)
temp u(k,j)
temp p(i,j)
temp acc(i,j)
temp v(i,j)
scalar lsum

pardo i, j
  acc(i,j) = 0.0
  do k
    execute fill_coords t(i,k)
    execute fill_coords u(k,j)
    do r
      p(i,j) = t(i,k) * u(k,j)
      acc(i,j) += p(i,j)
    enddo r
  enddo k
  put c(i,j) = acc(i,j)
endpardo i, j
sip_barrier

lsum = 0.0
do i
  do j
    get c(i,j)
    v(i,j) = c(i,j)
    lsum += v(i,j) * v(i,j)
  enddo j
enddo i
endsial
)SIAL";
}

SipConfig skew_config(bool work_stealing) {
  SipConfig config;
  config.workers = 2;
  config.io_servers = 0;
  config.default_segment = 48;
  config.segment_overrides["index"] = 1;  // `do r` sweeps reps times
  config.chunk_divisor = 1;
  config.min_chunk = 4;  // clamped to the fair share: 2 per worker
  config.work_stealing = work_stealing;
  config.constants = {{"n", 49}, {"reps", 400}};
  return config;
}

TEST(PlannerStealTest, StealingIsBitIdenticalOnSkewedPardo) {
  Sip no_steal(skew_config(false));
  const RunResult baseline = no_steal.run_source(skew_source());
  EXPECT_EQ(baseline.profile.scheduling.steals_granted, 0);

  // The steal itself is a race against the victim finishing its heavy
  // iteration; the skew makes it all but certain, but on a loaded
  // machine allow a few attempts. Bit-identity must hold on EVERY run,
  // stolen or not.
  std::int64_t steals = 0;
  for (int attempt = 0; attempt < 5; ++attempt) {
    Sip sip(skew_config(true));
    const RunResult result = sip.run_source(skew_source());
    EXPECT_EQ(result.scalar("lsum"), baseline.scalar("lsum"))
        << "attempt " << attempt;
    EXPECT_GT(result.profile.scheduling.chunks_served, 0);
    steals += result.profile.scheduling.steals_granted;
    if (steals > 0 && attempt >= 1) break;
  }
  EXPECT_GT(steals, 0) << "skewed pardo never triggered a steal";
}

TEST(PlannerStealTest, SerialAndStolenRunsAgree) {
  SipConfig serial = skew_config(false);
  serial.workers = 1;
  Sip one(serial);
  const double expected = one.run_source(skew_source()).scalar("lsum");
  Sip sip(skew_config(true));
  EXPECT_EQ(sip.run_source(skew_source()).scalar("lsum"), expected);
}

TEST(PlannerStealTest, StealingStaysExactlyOnceUnderChaos) {
  // Chaos drop/dup plans perturb the data plane while steals shuffle
  // the schedule underneath; a lost put or a double-applied accumulate
  // would shift the integer-valued checksum. Bit-equality against the
  // fault-free baseline is the exactly-once assertion.
  Sip clean(skew_config(true));
  const double baseline = clean.run_source(skew_source()).scalar("lsum");
  for (const char* plan : {"drop=0.01,seed=7", "dup=0.02,seed=11"}) {
    SipConfig config = skew_config(true);
    config.retry_timeout_ms = 50;
    config.fault_plan = FaultPlan::parse(plan);
    Sip sip(config);
    const RunResult result = sip.run_source(skew_source());
    EXPECT_EQ(result.scalar("lsum"), baseline) << plan;
  }
}

}  // namespace
}  // namespace sia::sip
