// Multi-process chaos matrix: the socket fabric with every worker and
// I/O-server rank in its own OS process (`transport=spawn`), driven
// through the same two-outcome contract as the in-process chaos suite —
// a faulted run either completes bit-identical to the fault-free thread
// baseline or aborts with a diagnosis naming the fault. The kill cases
// use real SIGKILL: the scheduled rank raises the signal against its own
// process, so the master's watchdog sees true process death, not a
// cooperative shutdown.
//
// This binary is its own spawn helper: main() routes `--sia-child`
// re-execs into run_spawn_child() before gtest ever initializes, so it
// links GTest::gtest (not gtest_main).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <string>

#include "chem/integrals.hpp"
#include "chem/programs.hpp"
#include "common/config.hpp"
#include "common/error.hpp"
#include "sip/launch.hpp"
#include "sip/spawn.hpp"

namespace sia::sip {
namespace {

// Same integer-valued distributed-array storm as test_chaos.cpp: puts,
// accumulating puts, and gets between workers, with a checksum that is
// bit-identical under any schedule but shifts by a whole integer if a
// message is lost or double-applied.
std::string dist_storm_source() {
  return R"SIAL(
sial dist_storm
aoindex a = 1, norb
aoindex k = 1, norb

distributed A(a,k)
temp t(a,k)
temp u(a,k)
scalar csum
scalar cnorm2

pardo a, k
  execute fill_coords t(a,k)
  put A(a,k) = t(a,k)
endpardo a, k
sip_barrier

pardo a, k
  execute fill_coords u(a,k)
  put A(a,k) += u(a,k)
endpardo a, k
sip_barrier

csum = 0.0
pardo a, k
  get A(a,k)
  t(a,k) = A(a,k)
  csum += t(a,k) * t(a,k)
endpardo a, k
cnorm2 = 0.0
collective cnorm2 += csum
endsial
)SIAL";
}

SipConfig dist_config(const std::string& transport) {
  SipConfig config;
  config.workers = 2;
  config.io_servers = 1;
  config.default_segment = 4;
  config.retry_timeout_ms = 50;
  config.transport = transport;
  config.constants = {{"norb", 16}};
  return config;
}

SipConfig storm_config(const std::string& transport) {
  chem::register_chem_superinstructions();
  SipConfig config;
  config.workers = 2;
  config.io_servers = 1;
  config.default_segment = 8;
  config.server_cache_bytes = 8 * 8 * 8 * sizeof(double);  // 8 blocks
  config.server_disk_threads = 2;
  config.prefetch_depth = 2;
  config.retry_timeout_ms = 50;
  config.transport = transport;
  config.constants = {{"norb", 64}, {"nsweeps", 1}, {"nshared", 32}};
  return config;
}

// Hard wall-clock deadline: a multi-process run that neither completes
// nor aborts would otherwise hang the suite on orphaned children.
RunResult run_with_deadline(const SipConfig& config,
                            const std::string& source,
                            int deadline_seconds = 180) {
  auto task = std::async(std::launch::async, [&config, &source] {
    Sip sip(config);
    return sip.run_source(source);
  });
  if (task.wait_for(std::chrono::seconds(deadline_seconds)) !=
      std::future_status::ready) {
    std::fprintf(stderr,
                 "spawn run exceeded the %d s deadline (hang) — aborting\n",
                 deadline_seconds);
    std::fflush(stderr);
    std::abort();
  }
  return task.get();  // rethrows the run's error, if any
}

RunResult run_with_plan(SipConfig config, const std::string& source,
                        const std::string& plan) {
  config.fault_plan = FaultPlan::parse(plan);
  return run_with_deadline(config, source);
}

double dist_baseline() {
  static const double value =
      run_with_deadline(dist_config("thread"), dist_storm_source())
          .scalar("cnorm2");
  return value;
}

double storm_baseline() {
  static const double value =
      run_with_deadline(storm_config("thread"), chem::io_storm_source())
          .scalar("snorm2");
  return value;
}

// ---------------------------------------------------------------------
// Fault-free transport parity: loopback (framed socketpair, one process)
// and spawn (real processes) must both reproduce the thread baseline
// bit-identically, and must actually have gone through the serializer.

TEST(SpawnParityTest, LoopbackMatchesThreadBitIdentically) {
  const RunResult result =
      run_with_deadline(dist_config("loopback"), dist_storm_source());
  EXPECT_EQ(result.scalar("cnorm2"), dist_baseline());
  EXPECT_GT(result.traffic.serialized_messages, 0);
  EXPECT_EQ(result.traffic.frames_rejected, 0);
}

TEST(SpawnParityTest, SpawnMatchesThreadBitIdentically) {
  const RunResult result =
      run_with_deadline(dist_config("spawn"), dist_storm_source());
  EXPECT_EQ(result.scalar("cnorm2"), dist_baseline());
  EXPECT_GT(result.traffic.serialized_messages, 0);
  EXPECT_EQ(result.traffic.frames_rejected, 0);
  EXPECT_EQ(result.profile.robustness.retries_sent, 0);
}

TEST(SpawnParityTest, SpawnServedStormMatchesThread) {
  const RunResult result =
      run_with_deadline(storm_config("spawn"), chem::io_storm_source());
  EXPECT_EQ(result.scalar("snorm2"), storm_baseline());
  // The served path (prepare/request) crossed process boundaries.
  EXPECT_GT(result.profile.served.server_requests, 0);
}

// ---------------------------------------------------------------------
// Chaos across real processes: drop, duplication, and delay injected
// identically in every child (pure function of {seed, src, counter}),
// recovered by the reliable layer over real sockets.

TEST(SpawnChaosTest, DropsAreRetransmittedAcrossProcesses) {
  const double baseline = dist_baseline();
  std::int64_t dropped = 0;
  std::int64_t retries = 0;
  for (int seed = 1; seed <= 8; ++seed) {
    const RunResult result =
        run_with_plan(dist_config("spawn"), dist_storm_source(),
                      "drop=0.02,seed=" + std::to_string(seed));
    EXPECT_EQ(result.scalar("cnorm2"), baseline) << "seed " << seed;
    dropped += result.profile.robustness.faults_dropped;
    retries += result.profile.robustness.retries_sent;
  }
  EXPECT_GT(dropped, 0);
  EXPECT_GT(retries, 0);
}

TEST(SpawnChaosTest, DuplicatesApplyExactlyOnceAcrossProcesses) {
  const double baseline = dist_baseline();
  std::int64_t duplicated = 0;
  for (int seed = 1; seed <= 3; ++seed) {
    const RunResult result =
        run_with_plan(dist_config("spawn"), dist_storm_source(),
                      "dup=0.02,seed=" + std::to_string(seed));
    EXPECT_EQ(result.scalar("cnorm2"), baseline) << "seed " << seed;
    duplicated += result.profile.robustness.faults_duplicated;
  }
  EXPECT_GT(duplicated, 0);
}

TEST(SpawnChaosTest, DelayAndReorderConvergeAcrossProcesses) {
  const double baseline = dist_baseline();
  std::int64_t perturbed = 0;
  for (int seed = 1; seed <= 3; ++seed) {
    const RunResult result = run_with_plan(
        dist_config("spawn"), dist_storm_source(),
        "delay_ms=3,delay_jitter_ms=4,reorder=0.05,seed=" +
            std::to_string(seed));
    EXPECT_EQ(result.scalar("cnorm2"), baseline) << "seed " << seed;
    perturbed += result.profile.robustness.faults_delayed +
                 result.profile.robustness.faults_reordered;
  }
  EXPECT_GT(perturbed, 0);
}

// ---------------------------------------------------------------------
// SIGKILL a worker process: the scheduled rank raises a real SIGKILL
// against itself, the master's heartbeat watchdog notices the silence,
// and the launch aborts with the watchdog's diagnosis — never a hang.

TEST(SpawnKillTest, WorkerSigkillAbortsWithDiagnosis) {
  const auto start = std::chrono::steady_clock::now();
  try {
    run_with_plan(dist_config("spawn"), dist_storm_source(),
                  "kill_rank=1@msg:10,seed=1");
    FAIL() << "spawn run with a SIGKILLed worker completed";
  } catch (const RuntimeError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("worker rank 1 unresponsive"), std::string::npos)
        << what;
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_LT(seconds, 60.0);
}

// ---------------------------------------------------------------------
// SIGKILL the (only) I/O-server process: the watchdog respawns it as a
// fresh process (incarnation 1), which rebuilds from the durable files +
// ack journal; worker retransmits repopulate the rest, bit-identically.

TEST(SpawnKillTest, ServerSigkillRecoversBitIdentically) {
  const double baseline = storm_baseline();
  const SipConfig config = storm_config("spawn");
  const int server_rank = config.first_server_rank();  // rank 3
  const RunResult result = run_with_plan(
      config, chem::io_storm_source(),
      "kill_rank=" + std::to_string(server_rank) + "@msg:25,seed=1");
  EXPECT_EQ(result.scalar("snorm2"), baseline);
  EXPECT_EQ(result.profile.robustness.server_recoveries, 1);
}

}  // namespace
}  // namespace sia::sip

// Custom main: a `--sia-child` re-exec is a spawned rank of one of the
// tests above and must never reach gtest.
int main(int argc, char** argv) {
  if (sia::sip::is_spawn_child(argc, argv)) {
    sia::chem::register_chem_superinstructions();
    return sia::sip::run_spawn_child(argc, argv);
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
