// Block-sparsity and norm-screening tests.
//
// Covers the screening engine bottom-up: the per-block cached Frobenius
// norm and the canonical shared zero block, the norm-product kernel
// screens, and randomized end-to-end properties over ranks 1-4 sparse
// arrays: at sparse_threshold = 0 a `sparse` array is bit-identical to
// the dense engine, and at threshold > 0 the checksum error is bounded
// by threshold * (number of screened contributions) — the screening
// contract from DESIGN.md. The served path (norm-marker prepares,
// norm-only request replies, eviction re-screening) is exercised through
// full SIP launches.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <string>

#include "chem/integrals.hpp"
#include "chem/programs.hpp"
#include "sip/launch.hpp"
#include "sip/superinstr.hpp"

namespace sia::sip {
namespace {

// ---------------------------------------------------------------------
// Norm cache and the canonical zero block.

TEST(BlockNormTest, FreshBlockHasZeroNorm) {
  const int extents[] = {3, 4};
  Block block{BlockShape{extents}};
  EXPECT_EQ(block.norm(), 0.0);
}

TEST(BlockNormTest, NormRecomputedAfterMutableAccess) {
  const int extents[] = {2, 2};
  Block block{BlockShape{extents}};
  block.data()[0] = 3.0;
  block.data()[3] = 4.0;
  EXPECT_DOUBLE_EQ(block.norm(), 5.0);
  // Mutable element access invalidates the cache.
  const int index[] = {0, 0};
  block.at(index) = 0.0;
  EXPECT_DOUBLE_EQ(block.norm(), 4.0);
  // Const access does not.
  const Block& view = block;
  EXPECT_EQ(view.data()[3], 4.0);
  EXPECT_DOUBLE_EQ(block.norm(), 4.0);
}

TEST(BlockNormTest, ZeroBlockIsCanonicalPerShape) {
  const int extents[] = {4, 4};
  const int other[] = {4, 5};
  const BlockPtr a = zero_block(BlockShape{extents});
  const BlockPtr b = zero_block(BlockShape{extents});
  const BlockPtr c = zero_block(BlockShape{other});
  EXPECT_EQ(a.get(), b.get());
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(a->norm(), 0.0);
  for (const double v : a->data()) EXPECT_EQ(v, 0.0);
  // The registry keeps its own reference, so COW guards (use_count > 2
  // with two holders) always treat the shared zero block as immutable.
  EXPECT_GE(a.use_count(), 3);
}

// ---------------------------------------------------------------------
// Kernel-level screening: GEMM / dot / permute skips.

void fill_value(Block& block, double value) {
  for (double& x : block.data()) x = value;
}

TEST(KernelScreenTest, ContractSkipsWhenNormProductBelowThreshold) {
  const int extents[] = {2, 2};
  Block a{BlockShape{extents}}, b{BlockShape{extents}};
  Block dst{BlockShape{extents}};
  fill_value(a, 1e-9);
  fill_value(b, 1.0);
  fill_value(dst, 7.0);
  const int ab[] = {0, 1};
  const int bc[] = {1, 2};
  const int ac[] = {0, 2};
  const std::uint64_t before = kernels_screened_count();
  // ||a|| * ||b|| = 2e-9 * 2 = 4e-9 < 1e-8: assign mode must zero dst.
  block_contract(dst, ac, a, ab, b, bc, /*accumulate=*/false, 1e-8);
  EXPECT_EQ(kernels_screened_count(), before + 1);
  for (const double v : dst.data()) EXPECT_EQ(v, 0.0);
  // Accumulate mode must leave dst untouched.
  fill_value(dst, 7.0);
  block_contract(dst, ac, a, ab, b, bc, /*accumulate=*/true, 1e-8);
  for (const double v : dst.data()) EXPECT_EQ(v, 7.0);
  // Above the threshold the GEMM runs.
  block_contract(dst, ac, a, ab, b, bc, /*accumulate=*/false, 1e-12);
  EXPECT_NE(dst.data()[0], 0.0);
}

TEST(KernelScreenTest, DotSkipsWhenNormProductBelowThreshold) {
  const int extents[] = {3};
  Block a{BlockShape{extents}}, b{BlockShape{extents}};
  fill_value(a, 1e-6);
  fill_value(b, 1e-6);
  const int ids[] = {0};
  EXPECT_EQ(block_dot(a, ids, b, ids, 1e-8), 0.0);
  EXPECT_NE(block_dot(a, ids, b, ids, 0.0), 0.0);
}

TEST(KernelScreenTest, PermuteAccumulateSkipsButAssignCopies) {
  const int extents[] = {2, 3};
  Block src{BlockShape{extents}};
  Block dst{BlockShape{extents}};
  fill_value(src, 1e-10);
  fill_value(dst, 1.0);
  const int ids[] = {0, 1};
  block_copy_permute(dst, ids, src, ids, CopyMode::kAccumulate, 1e-8);
  for (const double v : dst.data()) EXPECT_EQ(v, 1.0);
  // Assign must still define dst even below the threshold.
  block_copy_permute(dst, ids, src, ids, CopyMode::kAssign, 1e-8);
  for (const double v : dst.data()) EXPECT_EQ(v, 1e-10);
}

// ---------------------------------------------------------------------
// Randomized end-to-end properties over ranks 1-4.

SipConfig sparse_config(int workers, int segment, double threshold,
                        int worker_threads = -1) {
  chem::register_chem_superinstructions();
  SipConfig config;
  config.workers = workers;
  config.io_servers = 1;
  config.default_segment = segment;
  config.worker_threads = worker_threads;
  config.sparse_threshold = threshold;
  config.constants = {{"n", 16}, {"norb", 96}, {"nocc", 16}};
  return config;
}

// put/get round trip over a rank-r banded array: fills D with fill_decay
// blocks, reads every block back, and reduces total = sum_b ||b||^2 one
// block-dot at a time. Every screened block drops a contribution of
// ||b||^2 < threshold^2 from the checksum.
std::string rank_roundtrip_source(int rank, bool sparse, double rate,
                                  int fill_seed) {
  static const char* const kNames[] = {"i", "j", "k", "l"};
  std::string sel = "(";
  std::string decls;
  std::string loop;
  for (int d = 0; d < rank; ++d) {
    decls += std::string("aoindex ") + kNames[d] + " = 1, n\n";
    sel += std::string(d > 0 ? "," : "") + kNames[d];
    loop += std::string(d > 0 ? ", " : "") + kNames[d];
  }
  sel += ")";
  std::string out = "sial rank_roundtrip\n" + decls;
  out += std::string(sparse ? "sparse " : "") + "distributed D" + sel + "\n";
  out += "temp t" + sel + "\ntemp u" + sel + "\n";
  out += "scalar lsum\nscalar total\n";
  out += "pardo " + loop + "\n";
  out += "  execute fill_decay t" + sel + " " + std::to_string(rate) + " " +
         std::to_string(fill_seed) + "\n";
  out += "  put D" + sel + " = t" + sel + "\nendpardo " + loop + "\n";
  out += "sip_barrier\n";
  out += "lsum = 0.0\npardo " + loop + "\n";
  out += "  get D" + sel + "\n  u" + sel + " = D" + sel + "\n";
  out += "  lsum += u" + sel + " * u" + sel + "\nendpardo " + loop + "\n";
  out += "total = 0.0\ncollective total += lsum\nendsial\n";
  return out;
}

TEST(SparsePropertyTest, ThresholdZeroIsBitIdenticalToDense) {
  std::mt19937 rng(20260808);
  for (int rank = 1; rank <= 4; ++rank) {
    for (const int threads : {0, 2}) {
      const double rate =
          std::uniform_real_distribution<double>(1.8, 2.5)(rng);
      const int fill_seed = static_cast<int>(rng() % 1000) + 1;
      // One worker and hazard-ordered retire make the float accumulation
      // order reproducible across the two runs, so equality is exact.
      const std::string dense =
          rank_roundtrip_source(rank, false, rate, fill_seed);
      const std::string sparse =
          rank_roundtrip_source(rank, true, rate, fill_seed);
      Sip dense_sip(sparse_config(1, 4, 0.0, threads));
      Sip sparse_sip(sparse_config(1, 4, 0.0, threads));
      const double want = dense_sip.run_source(dense).scalar("total");
      const RunResult got = sparse_sip.run_source(sparse);
      EXPECT_EQ(got.scalar("total"), want)
          << "rank=" << rank << " threads=" << threads;
      EXPECT_EQ(got.traffic.blocks_screened, 0);
      EXPECT_FALSE(got.profile.screening.any());
    }
  }
}

TEST(SparsePropertyTest, ScreeningErrorIsBoundedByThreshold) {
  std::mt19937 rng(424242);
  const double threshold = 1e-3;
  for (int rank = 1; rank <= 4; ++rank) {
    const double rate = std::uniform_real_distribution<double>(1.8, 2.5)(rng);
    const int fill_seed = static_cast<int>(rng() % 1000) + 1;
    const int workers = 1 + static_cast<int>(rng() % 3);
    const std::string source =
        rank_roundtrip_source(rank, true, rate, fill_seed);
    Sip exact_sip(sparse_config(workers, 4, 0.0));
    Sip screened_sip(sparse_config(workers, 4, threshold));
    const double want = exact_sip.run_source(source).scalar("total");
    const RunResult got = screened_sip.run_source(source);

    std::int64_t blocks = 1;
    for (int d = 0; d < rank; ++d) blocks *= 4;  // n=16, segment 4
    std::int64_t block_elements = 1;
    for (int d = 0; d < rank; ++d) block_elements *= 4;
    // The contract: |delta| <= threshold * (scalar contributions), one
    // block-dot of block_elements terms per block. This workload is
    // tighter still — every dropped dot is Cauchy-Schwarz-bounded by its
    // norm product, which the screen kept below the threshold — so one
    // threshold per *block* also holds; assert both.
    const double delta = std::abs(got.scalar("total") - want);
    EXPECT_LE(delta, threshold * static_cast<double>(blocks * block_elements))
        << "rank=" << rank;
    EXPECT_LE(delta, threshold * static_cast<double>(blocks))
        << "rank=" << rank;
    // The banded fill must actually screen something at this threshold.
    EXPECT_GT(got.profile.screening.puts_screened, 0) << "rank=" << rank;
    EXPECT_GT(got.traffic.blocks_screened, 0) << "rank=" << rank;
  }
}

// ---------------------------------------------------------------------
// End-to-end distributed screening: the sparse Fock workload.

TEST(SparseFockTest, ScreenedRunMatchesExactWithinBound) {
  SipConfig exact = sparse_config(2, 16, 0.0);
  SipConfig screened = sparse_config(2, 16, 1e-8);
  Sip exact_sip(exact);
  Sip screened_sip(screened);
  const double want =
      exact_sip.run_source(chem::sparse_fock_source()).scalar("fnorm2");
  const RunResult got = screened_sip.run_source(chem::sparse_fock_source());
  // ||F~||^2 - ||F||^2 is bounded by (||F~|| + ||F||) * threshold * K;
  // 1e-4 is orders of magnitude above that for this size.
  EXPECT_NEAR(got.scalar("fnorm2"), want, 1e-4);
  EXPECT_GT(got.profile.screening.kernels_screened, 0);
  EXPECT_GT(got.profile.screening.puts_screened, 0);
  EXPECT_GT(got.profile.screening.gets_screened, 0);
  EXPECT_GT(got.traffic.bytes_elided, 0);
  ASSERT_EQ(got.profile.screening.arrays.size(), 2u);  // D and G
  for (const auto& census : got.profile.screening.arrays) {
    EXPECT_GT(census.screened, 0) << census.name;
    EXPECT_LT(census.screened, census.total) << census.name;
  }
}

// ---------------------------------------------------------------------
// End-to-end served screening: marker prepares and norm-only replies.

TEST(SparseServedTest, Mp2ServedScreensPreparesAndRequests) {
  SipConfig exact = sparse_config(2, 4, 0.0);
  SipConfig screened = sparse_config(2, 4, 1e-8);
  Sip exact_sip(exact);
  Sip screened_sip(screened);
  const double want =
      exact_sip.run_source(chem::sparse_mp2_source()).scalar("e2");
  const RunResult got = screened_sip.run_source(chem::sparse_mp2_source());
  EXPECT_NEAR(got.scalar("e2"), want, 1e-6);
  EXPECT_GT(got.profile.screening.prepares_screened, 0);
  EXPECT_GT(got.profile.screening.requests_screened, 0);
  EXPECT_GT(got.profile.screening.zero_reads, 0);
}

// A block that decays to exactly zero on the server (t then -t
// accumulated) must not be written to disk when it is flushed or
// evicted: the victim handler re-screens and records a presence-map
// marker instead (satellite: no all-zero payloads on disk).
TEST(SparseServedTest, EvictionReScreensDecayedBlocks) {
  SipConfig config = sparse_config(2, 8, 1e-8);
  // Cache of 4 blocks for a 64-block array: phase-2 accumulates evict
  // their predecessors through the victim handler while still dirty.
  config.server_cache_bytes = 4 * 8 * 8 * sizeof(double);
  Sip sip(config);
  const RunResult result = sip.run_source(R"(
sial evict_rescreen
aoindex a = 1, norb
aoindex k = 1, norb
sparse served S(a,k)
temp t(a,k)
temp u(a,k)
scalar lsum
scalar total
pardo a, k
  execute fill_coords t(a,k)
  prepare S(a,k) = t(a,k)
endpardo a, k
server_barrier
pardo a, k
  execute fill_coords t(a,k)
  u(a,k) = 0.0
  u(a,k) -= t(a,k)
  prepare S(a,k) += u(a,k)
endpardo a, k
server_barrier
lsum = 0.0
pardo a, k
  request S(a,k)
  t(a,k) = S(a,k)
  lsum += t(a,k) * t(a,k)
endpardo a, k
total = 0.0
collective total += lsum
endsial
)");
  // Every block decayed to exact zero, so the checksum is exactly zero
  // and every dirty flush/eviction after phase 2 must have re-screened.
  EXPECT_EQ(result.scalar("total"), 0.0);
  EXPECT_GT(result.profile.screening.evictions_screened, 0);
}

}  // namespace
}  // namespace sia::sip
