// Tests for the SIAL performance-model derivation (paper §VIII's planned
// "support for performance modeling").
#include <gtest/gtest.h>

#include "chem/programs.hpp"
#include "sial/compiler.hpp"
#include "sim/des.hpp"
#include "sim/machine.hpp"
#include "sim/program_model.hpp"

namespace sia::sim {
namespace {

sial::ResolvedProgram resolve(const std::string& source, int segment = 4,
                              long norb = 16, long nocc = 8) {
  SipConfig config;
  config.default_segment = segment;
  config.constants = {{"norb", norb}, {"nocc", nocc}, {"maxiter", 3},
                      {"n", norb}};
  return sial::ResolvedProgram(sial::compile_sial(source), config);
}

TEST(ProgramModelTest, OnePhasePerTopLevelPardo) {
  const auto program = resolve(chem::contraction_demo_source());
  const WorkloadModel model = model_program(program);
  // Fill pardo, contraction pardo, checksum pardo.
  ASSERT_EQ(model.phases.size(), 3u);
  for (const PhaseModel& phase : model.phases) {
    EXPECT_GT(phase.tasks, 0);
    EXPECT_GT(phase.flops_per_task, 0.0);
  }
}

TEST(ProgramModelTest, TaskCountsMatchFilteredSpaces) {
  const auto program = resolve(R"(
sial p
moindex i = 1, nocc
moindex j = 1, nocc
temp t(i,j)
pardo i, j where i < j
  t(i,j) = 1.0
endpardo i, j
endsial
)");
  const WorkloadModel model = model_program(program);
  ASSERT_EQ(model.phases.size(), 1u);
  // nocc=8, segment 4 -> 2 segments per index; i<j leaves 1 pair.
  EXPECT_EQ(model.phases[0].tasks, 1);
}

TEST(ProgramModelTest, ContractionFlopsCounted) {
  const auto program = resolve(R"(
sial p
moindex i = 1, nocc
moindex j = 1, nocc
moindex k = 1, nocc
temp a(i,k)
temp b(k,j)
temp c(i,j)
pardo i, j
  do k
    c(i,j) += a(i,k) * b(k,j)
  enddo k
endpardo i, j
endsial
)");
  const WorkloadModel model = model_program(program);
  ASSERT_EQ(model.phases.size(), 1u);
  // Per iteration: 2 do-k trips x (2 * 4*4 dst * 4 common) = 512 flops.
  EXPECT_DOUBLE_EQ(model.phases[0].flops_per_task, 2.0 * 2.0 * 16.0 * 4.0);
}

TEST(ProgramModelTest, FetchVolumeFromGets) {
  const auto program = resolve(R"(
sial p
moindex i = 1, nocc
moindex j = 1, nocc
distributed d(i,j)
temp t(i,j)
pardo i
  do j
    get d(i,j)
    t(i,j) = d(i,j)
  enddo j
endpardo i
endsial
)");
  const WorkloadModel model = model_program(program);
  ASSERT_EQ(model.phases.size(), 1u);
  EXPECT_EQ(model.phases[0].fetches_per_task, 2);  // 2 do-j trips
  EXPECT_DOUBLE_EQ(model.phases[0].bytes_per_fetch, 16.0 * 8.0);
}

TEST(ProgramModelTest, OuterDoBecomesSweeps) {
  const auto program = resolve(R"(
sial p
index iter = 1, maxiter
moindex i = 1, nocc
temp t(i)
do iter
  pardo i
    t(i) = 1.0
  endpardo i
enddo iter
endsial
)");
  const WorkloadModel model = model_program(program);
  ASSERT_EQ(model.phases.size(), 1u);
  EXPECT_EQ(model.phases[0].sweeps, 3);  // maxiter
}

TEST(ProgramModelTest, SequentialWorkBecomesSerialPhase) {
  const auto program = resolve(R"(
sial p
moindex i = 1, nocc
temp t(i)
do i
  t(i) = 1.0
enddo i
endsial
)");
  const WorkloadModel model = model_program(program);
  ASSERT_EQ(model.phases.size(), 1u);
  EXPECT_EQ(model.phases[0].name, "sequential");
  EXPECT_EQ(model.phases[0].tasks, 1);
}

TEST(ProgramModelTest, ProcBodiesAreInlined) {
  const auto program = resolve(R"(
sial p
moindex i = 1, nocc
moindex j = 1, nocc
moindex k = 1, nocc
temp a(i,k)
temp b(k,j)
temp c(i,j)
proc work
  do j
    do k
      c(i,j) += a(i,k) * b(k,j)
    enddo k
  enddo j
endproc
pardo i
  call work
endpardo i
endsial
)");
  const WorkloadModel model = model_program(program);
  ASSERT_GE(model.phases.size(), 1u);
  EXPECT_GT(model.phases[0].flops_per_task, 0.0);
}

TEST(ProgramModelTest, CcdModelProjectsSensibly) {
  // A system large enough that compute dominates the per-phase overheads.
  const auto program = resolve(chem::ccd_energy_source(), 4, 48, 16);
  const WorkloadModel model = model_program(program);
  EXPECT_GT(model.total_flops(), 1e9);
  // Projected times shrink with more cores while tasks outnumber them.
  const MachineModel machine = cray_xt5();
  const double t4 = simulate_workload(machine, model, 4, SimOptions{}).seconds;
  const double t64 = simulate_workload(machine, model, 64, SimOptions{}).seconds;
  EXPECT_LT(t64, t4);
}

TEST(ProgramModelTest, MemoryFootprintsFilled) {
  const auto program = resolve(chem::ccd_energy_source(), 4, 24, 8);
  const WorkloadModel model = model_program(program);
  EXPECT_GT(model.sia_resident_total, 0.0);   // distributed T, Tnew
  EXPECT_GT(model.sia_fixed_per_core, 0.0);   // temp pools
}

TEST(ProgramModelTest, ExecuteCostUsesKnob) {
  const auto program = resolve(R"(
sial p
moindex i = 1, nocc
temp t(i)
pardo i
  execute compute_integrals t(i)
endpardo i
endsial
)");
  ModelOptions cheap;
  cheap.execute_flops_per_element = 10.0;
  ModelOptions costly;
  costly.execute_flops_per_element = 1000.0;
  const double low =
      model_program(program, cheap).phases[0].flops_per_task;
  const double high =
      model_program(program, costly).phases[0].flops_per_task;
  EXPECT_DOUBLE_EQ(high, 100.0 * low);
}

}  // namespace
}  // namespace sia::sim
