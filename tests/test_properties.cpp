// Property-based tests: invariants that must hold across the tuning
// parameters the paper says are free to change without touching SIAL
// source — segment size, worker count, I/O server count, prefetch depth.
// The observable results must be identical (to rounding) in every
// configuration.
#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>

#include "blas/contraction_plan.hpp"
#include "chem/integrals.hpp"
#include "chem/programs.hpp"
#include "chem/reference.hpp"
#include "sip/launch.hpp"

namespace sia::sip {
namespace {

SipConfig make_config(int workers, int segment, int servers = 1,
                      int prefetch = 2) {
  chem::register_chem_superinstructions();
  SipConfig config;
  config.workers = workers;
  config.io_servers = servers;
  config.default_segment = segment;
  config.prefetch_depth = prefetch;
  config.constants = {{"norb", 8}, {"nocc", 4}, {"maxiter", 2}};
  return config;
}

// ---------------------------------------------------------------------
// Segment size x worker count sweep: MP2 energy invariant.
// nocc = 4 requires segment in {1, 2, 4} for aligned virtuals.

class Mp2Invariance
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(Mp2Invariance, EnergyIndependentOfTuning) {
  const auto [workers, segment] = GetParam();
  Sip sip(make_config(workers, segment));
  const RunResult result = sip.run_source(chem::mp2_energy_source());
  EXPECT_NEAR(result.scalar("e2"), chem::ref_mp2_energy(8, 4), 1e-11)
      << "workers=" << workers << " segment=" << segment;
}

INSTANTIATE_TEST_SUITE_P(Sweep, Mp2Invariance,
                         ::testing::Combine(::testing::Values(1, 2, 4),
                                            ::testing::Values(1, 2, 4)));

// ---------------------------------------------------------------------
// CCD energy invariant under worker count and prefetch depth.

class CcdInvariance
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CcdInvariance, EnergyIndependentOfWorkersAndPrefetch) {
  const auto [workers, prefetch] = GetParam();
  Sip sip(make_config(workers, 4, 1, prefetch));
  const RunResult result = sip.run_source(chem::ccd_energy_source());
  double norm2 = 0.0;
  const double want = chem::ref_ccd_energy(8, 4, 2, &norm2);
  EXPECT_NEAR(result.scalar("energy"), want, 1e-11)
      << "workers=" << workers << " prefetch=" << prefetch;
  EXPECT_NEAR(result.scalar("rnorm2"), norm2, 1e-11);
}

INSTANTIATE_TEST_SUITE_P(Sweep, CcdInvariance,
                         ::testing::Combine(::testing::Values(1, 3, 5),
                                            ::testing::Values(0, 3)));

// ---------------------------------------------------------------------
// Served arrays: result invariant under the I/O server count and server
// cache size (including a cache so small everything spills to disk).

class ServedInvariance
    : public ::testing::TestWithParam<std::tuple<int, std::size_t>> {};

TEST_P(ServedInvariance, Mp2ServedStable) {
  const auto [servers, cache_bytes] = GetParam();
  SipConfig config = make_config(2, 4, servers);
  config.server_cache_bytes = cache_bytes;
  Sip sip(config);
  const RunResult result = sip.run_source(chem::mp2_served_source());
  EXPECT_NEAR(result.scalar("e2"), chem::ref_mp2_energy(8, 4), 1e-11);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ServedInvariance,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(std::size_t{256} * 8,
                                         std::size_t{1} << 20)));

// ---------------------------------------------------------------------
// Fock build invariant across segment sizes (tail segments included).

class FockInvariance : public ::testing::TestWithParam<int> {};

TEST_P(FockInvariance, NormIndependentOfSegmentSize) {
  SipConfig config = make_config(2, GetParam());
  Sip sip(config);
  const RunResult result = sip.run_source(chem::fock_build_source());
  EXPECT_NEAR(result.scalar("fnorm"), chem::ref_fock_norm(8), 1e-10)
      << "segment " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Segments, FockInvariance,
                         ::testing::Values(1, 2, 3, 4, 5, 8));

// ---------------------------------------------------------------------
// Chunk-scheduling knobs must not change results.

class SchedulingInvariance
    : public ::testing::TestWithParam<std::tuple<int, long>> {};

TEST_P(SchedulingInvariance, ContractionChecksumStable) {
  const auto [divisor, min_chunk] = GetParam();
  SipConfig config = make_config(3, 4);
  config.chunk_divisor = divisor;
  config.min_chunk = min_chunk;
  Sip sip(config);
  const RunResult result = sip.run_source(chem::contraction_demo_source());
  EXPECT_NEAR(result.scalar("rnorm2"),
              chem::ref_contraction_rnorm2(8, 4, 7.0), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SchedulingInvariance,
                         ::testing::Combine(::testing::Values(1, 2, 8),
                                            ::testing::Values(1l, 4l)));

// ---------------------------------------------------------------------
// Repeatability: identical configuration twice gives bit-identical
// scalars (deterministic synthetic data, associativity-safe reductions at
// this size).

TEST(DeterminismTest, RepeatedRunsBitIdentical) {
  Sip sip(make_config(3, 4));
  const RunResult a = sip.run_source(chem::mp2_energy_source());
  const RunResult b = sip.run_source(chem::mp2_energy_source());
  EXPECT_EQ(a.scalar("e2"), b.scalar("e2"));
}

// ---------------------------------------------------------------------
// Contraction plan cache: inside pardos the same symbolic contraction
// repeats over identically shaped blocks, so planning must be amortized —
// the per-worker caches should serve the overwhelming majority of
// block_contract calls from memory on the example programs.

TEST(PlanCacheTest, HighHitRateOnMp2AndCcd) {
  blas::reset_plan_cache_stats();
  {
    Sip sip(make_config(2, 2));
    sip.run_source(chem::mp2_energy_source());
  }
  {
    Sip sip(make_config(2, 2));
    sip.run_source(chem::ccd_energy_source());
  }
  const blas::PlanCacheStats stats = blas::plan_cache_stats();
  const std::uint64_t total = stats.hits + stats.misses;
  ASSERT_GT(total, 0u);
  const double hit_rate =
      static_cast<double>(stats.hits) / static_cast<double>(total);
  EXPECT_GT(hit_rate, 0.95) << "hits=" << stats.hits
                            << " misses=" << stats.misses;
}

// Worker memory budget (as long as feasible) must not change results,
// only pool behaviour.
TEST(DeterminismTest, MemoryBudgetOnlyAffectsPools) {
  SipConfig small = make_config(2, 4);
  small.worker_memory_bytes = 1 << 18;
  SipConfig large = make_config(2, 4);
  large.worker_memory_bytes = 64 << 20;
  Sip sip_small(small);
  Sip sip_large(large);
  const RunResult a = sip_small.run_source(chem::mp2_energy_source());
  const RunResult b = sip_large.run_source(chem::mp2_energy_source());
  EXPECT_EQ(a.scalar("e2"), b.scalar("e2"));
}

}  // namespace
}  // namespace sia::sip
