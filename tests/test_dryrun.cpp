// Dry-run analysis tests: the master's memory estimate, infeasibility
// reporting, and the pool plan (paper §V-B).
#include <gtest/gtest.h>

#include "sial/compiler.hpp"
#include "sip/master.hpp"

namespace sia::sip {
namespace {

SipConfig dry_config() {
  SipConfig config;
  config.workers = 4;
  config.io_servers = 1;
  config.default_segment = 4;
  config.prefetch_depth = 2;
  config.worker_memory_bytes = 1 << 20;
  config.constants = {{"n", 32}};
  return config;
}

DryRunReport analyze(const std::string& body,
                     SipConfig config = dry_config()) {
  const sial::ResolvedProgram program(
      sial::compile_sial("sial test\n" + body + "\nendsial\n"), config);
  return dry_run(program);
}

TEST(DryRunTest, StaticArraysCountedFully) {
  const DryRunReport report = analyze(R"(
aoindex mu = 1, n
aoindex nu = 1, n
static s(mu,nu)
)");
  EXPECT_EQ(report.static_bytes, 32u * 32u * sizeof(double));
}

TEST(DryRunTest, DistributedShareScalesWithWorkers) {
  const std::string body = R"(
aoindex mu = 1, n
aoindex nu = 1, n
distributed d(mu,nu)
)";
  SipConfig few = dry_config();
  few.workers = 2;
  SipConfig many = dry_config();
  many.workers = 8;
  const DryRunReport a = analyze(body, few);
  const DryRunReport b = analyze(body, many);
  EXPECT_EQ(a.dist_total_bytes, b.dist_total_bytes);
  EXPECT_EQ(a.dist_share_bytes, 4 * b.dist_share_bytes);
}

TEST(DryRunTest, TempWorkingSetFromPardoBody) {
  const DryRunReport report = analyze(R"(
aoindex mu = 1, n
aoindex nu = 1, n
temp t(mu,nu)
pardo mu, nu
  t(mu,nu) = 1.0
endpardo mu, nu
)");
  // Two buffers of one 4x4 block.
  EXPECT_EQ(report.temp_peak_bytes, 2u * 16u * sizeof(double));
}

TEST(DryRunTest, CacheDemandIncludesPrefetchDepth) {
  const std::string body = R"(
aoindex mu = 1, n
aoindex nu = 1, n
distributed d(mu,nu)
temp t(mu,nu)
pardo mu
  do nu
    get d(mu,nu)
    t(mu,nu) = d(mu,nu)
  enddo nu
endpardo mu
)";
  SipConfig shallow = dry_config();
  shallow.prefetch_depth = 0;
  SipConfig deep = dry_config();
  deep.prefetch_depth = 3;
  EXPECT_EQ(analyze(body, deep).cache_demand_bytes,
            4u * analyze(body, shallow).cache_demand_bytes);
}

TEST(DryRunTest, LocalWildcardAllocationEstimated) {
  const DryRunReport report = analyze(R"(
aoindex mu = 1, n
aoindex nu = 1, n
local l(mu,nu)
do nu
  allocate l(*,nu)
enddo nu
)");
  // One full dimension (32 elements) x one segment (4) of the other.
  EXPECT_EQ(report.local_bytes, 32u * 4u * sizeof(double));
}

TEST(DryRunTest, ServedArraysReportedButNotResident) {
  const DryRunReport report = analyze(R"(
aoindex mu = 1, n
aoindex nu = 1, n
served s(mu,nu)
)");
  EXPECT_EQ(report.served_total_bytes, 32u * 32u * sizeof(double));
  EXPECT_EQ(report.dist_share_bytes, 0u);
}

TEST(DryRunTest, FeasibleWhenSmall) {
  const DryRunReport report = analyze(R"(
aoindex mu = 1, n
temp t(mu)
do mu
  t(mu) = 1.0
enddo mu
)");
  EXPECT_TRUE(report.feasible);
  EXPECT_EQ(report.workers_needed, dry_config().workers);
}

TEST(DryRunTest, InfeasibleComputesSufficientWorkers) {
  SipConfig config = dry_config();
  config.worker_memory_bytes = 8192;
  config.constants["n"] = 128;  // 128 KiB of distributed data
  const DryRunReport report = analyze(R"(
aoindex mu = 1, n
aoindex nu = 1, n
distributed d(mu,nu)
)",
                                      config);
  ASSERT_FALSE(report.feasible);
  ASSERT_GT(report.workers_needed, config.workers);
  // The suggested count must actually fit.
  SipConfig enough = config;
  enough.workers = report.workers_needed;
  const DryRunReport retry = analyze(R"(
aoindex mu = 1, n
aoindex nu = 1, n
distributed d(mu,nu)
)",
                                     enough);
  EXPECT_TRUE(retry.feasible);
}

TEST(DryRunTest, HopelessFixedCostsReportZeroWorkers) {
  SipConfig config = dry_config();
  config.worker_memory_bytes = 64;  // smaller than one block
  const DryRunReport report = analyze(R"(
aoindex mu = 1, n
aoindex nu = 1, n
static s(mu,nu)
)",
                                      config);
  EXPECT_FALSE(report.feasible);
  EXPECT_EQ(report.workers_needed, 0);
}

TEST(DryRunTest, PoolPlanHasClassesForUsedShapes) {
  const DryRunReport report = analyze(R"(
aoindex mu = 1, n
aoindex nu = 1, n
temp t2(mu,nu)
temp t1(mu)
pardo mu, nu
  t2(mu,nu) = 1.0
endpardo mu, nu
do mu
  t1(mu) = 1.0
enddo mu
)");
  // Classes for 4-element and 16-element blocks.
  EXPECT_TRUE(report.pool_plan.count(4));
  EXPECT_TRUE(report.pool_plan.count(16));
  for (const auto& [capacity, slots] : report.pool_plan) {
    EXPECT_GE(slots, 2u) << "class " << capacity;
  }
}

TEST(DryRunTest, ReportFormatsHumanReadably) {
  const DryRunReport report = analyze(R"(
aoindex mu = 1, n
distributed d(mu)
)");
  const std::string text = report.to_string();
  EXPECT_NE(text.find("dry run"), std::string::npos);
  EXPECT_NE(text.find("distributed share"), std::string::npos);
  EXPECT_NE(text.find("feasible"), std::string::npos);
}

}  // namespace
}  // namespace sia::sip
