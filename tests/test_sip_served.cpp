// SIP served-array (disk-backed) tests: prepare/request, accumulate,
// server-side LRU with write-behind, and persistence across SIP runs.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>

#include "chem/integrals.hpp"
#include "sip/launch.hpp"

namespace sia::sip {
namespace {

SipConfig config_with(int workers, int servers) {
  SipConfig config;
  config.workers = workers;
  config.io_servers = servers;
  config.default_segment = 3;
  config.constants = {{"n", 9}};
  return config;
}

RunResult run(Sip& sip, const std::string& body) {
  return sip.run_source("sial test\n" + body + "\nendsial\n");
}

constexpr const char* kPrepareRequestRoundTrip = R"(
moindex i = 1, n
moindex j = 1, n
served s(i,j)
temp t(i,j)
temp u(i,j)
scalar lsum
scalar total
pardo i, j
  execute fill_coords t(i,j)
  prepare s(i,j) = t(i,j)
endpardo i, j
server_barrier
pardo i, j
  request s(i,j)
  execute fill_coords t(i,j)
  u(i,j) = s(i,j)
  u(i,j) -= t(i,j)
  lsum += u(i,j) * u(i,j)
endpardo i, j
total = 0.0
collective total += lsum
)";

TEST(SipServedTest, PrepareRequestRoundTrip) {
  for (const auto& [workers, servers] :
       std::vector<std::pair<int, int>>{{1, 1}, {3, 1}, {3, 2}, {4, 3}}) {
    Sip sip(config_with(workers, servers));
    const RunResult result = run(sip, kPrepareRequestRoundTrip);
    EXPECT_NEAR(result.scalar("total"), 0.0, 1e-18)
        << workers << " workers, " << servers << " servers";
  }
}

TEST(SipServedTest, PrepareAccumulate) {
  Sip sip(config_with(2, 1));
  const RunResult result = run(sip, R"(
moindex i = 1, n
served s(i)
temp t(i)
temp u(i)
scalar lsum
scalar total
pardo i
  t(i) = 1.5
  prepare s(i) = t(i)
endpardo i
server_barrier
pardo i
  t(i) = 0.5
  prepare s(i) += t(i)
endpardo i
server_barrier
pardo i
  request s(i)
  u(i) = s(i)
  lsum += u(i) * u(i)
endpardo i
total = 0.0
collective total += lsum
)");
  EXPECT_DOUBLE_EQ(result.scalar("total"), 9.0 * 4.0);
}

TEST(SipServedTest, AccumulateIntoNeverPreparedBlockStartsAtZero) {
  // Paper: blocks are allocated only when actually filled; += on a fresh
  // block accumulates onto zero.
  Sip sip(config_with(2, 1));
  const RunResult result = run(sip, R"(
moindex i = 1, n
served s(i)
temp t(i)
temp u(i)
scalar lsum
scalar total
pardo i
  t(i) = 4.0
  prepare s(i) += t(i)
endpardo i
server_barrier
pardo i
  request s(i)
  u(i) = s(i)
  lsum += u(i) * u(i)
endpardo i
total = 0.0
collective total += lsum
)");
  EXPECT_DOUBLE_EQ(result.scalar("total"), 9.0 * 16.0);
}

TEST(SipServedTest, TinyServerCacheForcesDiskTraffic) {
  // Server cache fits only one block: prepares must spill to disk via the
  // write-behind path and requests must read back from disk.
  SipConfig config = config_with(2, 1);
  config.server_cache_bytes = 9 * sizeof(double);  // one 3x3 block
  Sip sip(config);
  const RunResult result = run(sip, kPrepareRequestRoundTrip);
  EXPECT_NEAR(result.scalar("total"), 0.0, 1e-18);
}

TEST(SipServedTest, PersistsAcrossRunsInSameScratchDir) {
  // Program 1 prepares; program 2 (a separate SIP run in the same Sip)
  // requests the data back — the paper's mechanism for passing data
  // between SIAL programs.
  Sip sip(config_with(2, 1));
  run(sip, R"(
moindex i = 1, n
served s(i)
temp t(i)
pardo i
  t(i) = 2.5
  prepare s(i) = t(i)
endpardo i
server_barrier
)");
  const RunResult second = run(sip, R"(
moindex i = 1, n
served s(i)
temp u(i)
scalar lsum
scalar total
pardo i
  request s(i)
  u(i) = s(i)
  lsum += u(i) * u(i)
endpardo i
total = 0.0
collective total += lsum
)");
  EXPECT_DOUBLE_EQ(second.scalar("total"), 9.0 * 6.25);
}

TEST(SipServedTest, PipelinedServerSurvivesReopenOfScratchDir) {
  // Crash-consistency of the full pipeline: prepare through the batched
  // write-behind (deferred presence-map flush), tear the whole SIP down,
  // then a second SIP reopens the same scratch directory and must find
  // every block. The tiny cache forces all data through the disk path.
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("sia_served_reopen_" + std::to_string(::getpid())))
          .string();
  SipConfig config = config_with(2, 1);
  config.scratch_dir = dir;
  config.server_disk_threads = 4;
  config.prefetch_depth = 4;
  config.server_cache_bytes = 9 * sizeof(double);  // one 3x3 block
  {
    Sip sip(config);
    run(sip, R"(
moindex i = 1, n
moindex j = 1, n
served s(i,j)
temp t(i,j)
pardo i, j
  execute fill_coords t(i,j)
  prepare s(i,j) = t(i,j)
endpardo i, j
server_barrier
)");
  }
  {
    Sip sip(config);
    const RunResult second = run(sip, R"(
moindex i = 1, n
moindex j = 1, n
served s(i,j)
temp t(i,j)
temp u(i,j)
scalar lsum
scalar total
pardo i, j
  request s(i,j)
  execute fill_coords t(i,j)
  u(i,j) = s(i,j)
  u(i,j) -= t(i,j)
  lsum += u(i,j) * u(i,j)
endpardo i, j
total = 0.0
collective total += lsum
)");
    EXPECT_NEAR(second.scalar("total"), 0.0, 1e-18);
  }
  std::filesystem::remove_all(dir);
}

TEST(SipServedTest, RequestOfNeverPreparedBlockFails) {
  Sip sip(config_with(2, 1));
  EXPECT_THROW(run(sip, R"(
moindex i = 1, n
served s(i)
temp u(i)
scalar lsum
pardo i
  request s(i)
  u(i) = s(i)
  lsum += u(i) * u(i)
endpardo i
)"),
               RuntimeError);
}

TEST(SipServedTest, ServedWithoutServersFails) {
  Sip sip(config_with(2, 0));
  EXPECT_THROW(run(sip, R"(
moindex i = 1, n
served s(i)
temp t(i)
pardo i
  t(i) = 1.0
  prepare s(i) = t(i)
endpardo i
)"),
               RuntimeError);
}

TEST(SipServedTest, MixedDistributedAndServed) {
  Sip sip(config_with(3, 2));
  const RunResult result = run(sip, R"(
moindex i = 1, n
distributed d(i)
served s(i)
temp t(i)
temp u(i)
temp v(i)
scalar lsum
scalar total
pardo i
  t(i) = 3.0
  put d(i) = t(i)
  prepare s(i) = t(i)
endpardo i
sip_barrier
server_barrier
pardo i
  get d(i)
  request s(i)
  u(i) = d(i)
  v(i) = s(i)
  lsum += u(i) * v(i)
endpardo i
total = 0.0
collective total += lsum
)");
  EXPECT_DOUBLE_EQ(result.scalar("total"), 9.0 * 9.0);
}

TEST(SipServedTest, ComputedServedArrayGeneratesOnDemand) {
  // Paper section V-B: "An I/O server may also perform certain domain
  // specific computations, namely computing blocks of integrals ...
  // computed on demand rather than stored." The V array is never
  // prepared; requests are answered by the server-side generator.
  chem::register_chem_superinstructions();
  SipConfig config = config_with(2, 2);
  config.constants = {{"norb", 8}};
  config.computed_served["V"] = "integral_generator";
  Sip sip(config);
  const RunResult result = run(sip, R"(
aoindex m = 1, norb
aoindex n = 1, norb
aoindex l = 1, norb
aoindex s = 1, norb
served V(m,n,l,s)
temp v(m,n,l,s)
temp w(m,n,l,s)
temp dv(m,n,l,s)
scalar lsum
scalar total
pardo m, n
  do l
    do s
      request V(m,n,l,s)
      execute compute_integrals w(m,n,l,s)
      v(m,n,l,s) = V(m,n,l,s)
      dv(m,n,l,s) = v(m,n,l,s) - w(m,n,l,s)
      lsum += dv(m,n,l,s) * dv(m,n,l,s)
    enddo s
  enddo l
endpardo m, n
total = 0.0
collective total += lsum
)");
  // Server-generated blocks match the worker-side intrinsic exactly.
  EXPECT_NEAR(result.scalar("total"), 0.0, 1e-18);
}

TEST(SipServedTest, PreparedBlocksOverrideComputedGenerator) {
  chem::register_chem_superinstructions();
  SipConfig config = config_with(2, 1);
  config.constants = {{"norb", 8}};
  config.computed_served["V"] = "integral_generator";
  Sip sip(config);
  const RunResult result = run(sip, R"(
aoindex m = 1, norb
aoindex n = 1, norb
aoindex l = 1, norb
aoindex s = 1, norb
served V(m,n,l,s)
temp t(m,n,l,s)
temp v(m,n,l,s)
scalar lsum
scalar total
# Overwrite one corner of the array with a constant.
pardo m, n where m == 1 where n == 1
  do l
    do s
      t(m,n,l,s) = 5.0
      prepare V(m,n,l,s) = t(m,n,l,s)
    enddo s
  enddo l
endpardo m, n
server_barrier
lsum = 0.0
pardo m, n where m == 1 where n == 1
  do l
    do s
      request V(m,n,l,s)
      v(m,n,l,s) = V(m,n,l,s)
      lsum += v(m,n,l,s) * v(m,n,l,s)
    enddo s
  enddo l
endpardo m, n
total = 0.0
collective total += lsum
)");
  // Segment 3 over norb 8: the (m=1,n=1) region is a 3x3 element face
  // times the full 8x8 (l,s) space = 576 elements of value 5.
  EXPECT_DOUBLE_EQ(result.scalar("total"), 576.0 * 25.0);
}

TEST(SipServedTest, UnregisteredGeneratorNameFails) {
  SipConfig config = config_with(2, 1);
  config.computed_served["s"] = "no_such_generator";
  Sip sip(config);
  EXPECT_THROW(run(sip, R"(
moindex i = 1, n
served s(i)
temp u(i)
scalar lsum
pardo i
  request s(i)
  u(i) = s(i)
  lsum += u(i) * u(i)
endpardo i
)"),
               RuntimeError);
}

}  // namespace
}  // namespace sia::sip
