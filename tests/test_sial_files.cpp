// Compiles and runs the shipped .sial programs under programs/ — the
// files users feed to example_sial_tool must stay valid as the language
// evolves.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "chem/integrals.hpp"
#include "sial/compiler.hpp"
#include "sial/disasm.hpp"
#include "sip/launch.hpp"

#ifndef SIA_PROGRAMS_DIR
#define SIA_PROGRAMS_DIR "programs"
#endif

namespace sia::sip {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string program_path(const std::string& name) {
  return std::string(SIA_PROGRAMS_DIR) + "/" + name;
}

SipConfig file_config() {
  chem::register_chem_superinstructions();
  SipConfig config;
  config.workers = 2;
  config.io_servers = 1;
  config.default_segment = 4;
  config.constants = {{"n", 8}, {"norb", 8}, {"nocc", 4}};
  return config;
}

TEST(SialFilesTest, AllShippedProgramsCompile) {
  int count = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(SIA_PROGRAMS_DIR)) {
    if (entry.path().extension() != ".sial") continue;
    ++count;
    const std::string source = read_file(entry.path().string());
    sial::CompiledProgram program;
    ASSERT_NO_THROW(program = sial::compile_sial(source))
        << entry.path().string();
    EXPECT_FALSE(disassemble(program).empty());
  }
  EXPECT_GE(count, 4) << "shipped program files went missing";
}

TEST(SialFilesTest, QuickstartRuns) {
  Sip sip(file_config());
  const RunResult result =
      sip.run_source(read_file(program_path("quickstart.sial")));
  EXPECT_GT(result.scalar("cnorm"), 0.0);
}

TEST(SialFilesTest, PaperFragmentRuns) {
  Sip sip(file_config());
  const RunResult result =
      sip.run_source(read_file(program_path("paper_fragment.sial")));
  EXPECT_GT(result.scalar("rnorm"), 0.0);
}

TEST(SialFilesTest, Mp2FileMatchesEmbeddedProgram) {
  Sip sip(file_config());
  const RunResult from_file =
      sip.run_source(read_file(program_path("mp2.sial")));
  EXPECT_NEAR(from_file.scalar("e2"), -0.139488828857, 1e-9);
}

TEST(SialFilesTest, SubindexDemoTilesExactly) {
  SipConfig config = file_config();
  config.subsegments_per_segment = 2;
  Sip sip(config);
  const RunResult result =
      sip.run_source(read_file(program_path("subindex_demo.sial")));
  EXPECT_NEAR(result.scalar("full_total"), result.scalar("parts_total"),
              1e-9);
  EXPECT_GT(result.scalar("full_total"), 0.0);
}

TEST(SialFilesTest, DryRunWorksOnFiles) {
  Sip sip(file_config());
  const sial::CompiledProgram program = sial::compile_sial(
      read_file(program_path("paper_fragment.sial")));
  const DryRunReport report = sip.analyze(program);
  EXPECT_TRUE(report.feasible);
  EXPECT_GT(report.dist_total_bytes, 0u);
}

}  // namespace
}  // namespace sia::sip
