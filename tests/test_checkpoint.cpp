// Checkpoint/restore tests (blocks_to_list / list_to_blocks, paper §IV-C):
// round trips within a run, across runs, and across different worker
// counts.
#include <gtest/gtest.h>

#include <filesystem>

#include "sip/checkpoint.hpp"
#include "sip/launch.hpp"

namespace sia::sip {
namespace {

SipConfig ck_config(int workers, const std::string& scratch = "") {
  SipConfig config;
  config.workers = workers;
  config.io_servers = 0;
  config.default_segment = 3;
  config.scratch_dir = scratch;
  config.constants = {{"n", 9}};
  return config;
}

constexpr const char* kFillAndCheckpoint = R"(
sial writer
moindex i = 1, n
moindex j = 1, n
distributed d(i,j)
temp t(i,j)
pardo i, j
  execute fill_coords t(i,j)
  put d(i,j) = t(i,j)
endpardo i, j
checkpoint d "state"
endsial
)";

constexpr const char* kRestoreAndVerify = R"(
sial reader
moindex i = 1, n
moindex j = 1, n
distributed d(i,j)
temp t(i,j)
temp u(i,j)
scalar lsum
scalar total
restore d "state"
pardo i, j
  get d(i,j)
  execute fill_coords t(i,j)
  u(i,j) = d(i,j)
  u(i,j) -= t(i,j)
  lsum += u(i,j) * u(i,j)
endpardo i, j
total = 0.0
collective total += lsum
endsial
)";

TEST(CheckpointTest, RoundTripWithinOneSip) {
  Sip sip(ck_config(3));
  sip.run_source(kFillAndCheckpoint);
  const RunResult result = sip.run_source(kRestoreAndVerify);
  EXPECT_NEAR(result.scalar("total"), 0.0, 1e-18);
}

TEST(CheckpointTest, RestoreUnderDifferentWorkerCount) {
  // The paper's restart facility: write with 4 workers, restart with 2.
  const std::string scratch =
      (std::filesystem::temp_directory_path() / "sia_ck_test").string();
  std::filesystem::remove_all(scratch);
  {
    Sip sip(ck_config(4, scratch));
    sip.run_source(kFillAndCheckpoint);
  }
  {
    Sip sip(ck_config(2, scratch));
    const RunResult result = sip.run_source(kRestoreAndVerify);
    EXPECT_NEAR(result.scalar("total"), 0.0, 1e-18);
  }
  std::filesystem::remove_all(scratch);
}

TEST(CheckpointTest, RestoreOverwritesExistingContent) {
  Sip sip(ck_config(2));
  sip.run_source(kFillAndCheckpoint);
  // Fill d with junk, then restore: values must come back.
  const RunResult result = sip.run_source(R"(
sial reader
moindex i = 1, n
moindex j = 1, n
distributed d(i,j)
temp t(i,j)
temp u(i,j)
scalar lsum
scalar total
pardo i, j
  t(i,j) = -99.0
  put d(i,j) = t(i,j)
endpardo i, j
restore d "state"
pardo i, j
  get d(i,j)
  execute fill_coords t(i,j)
  u(i,j) = d(i,j)
  u(i,j) -= t(i,j)
  lsum += u(i,j) * u(i,j)
endpardo i, j
total = 0.0
collective total += lsum
endsial
)");
  EXPECT_NEAR(result.scalar("total"), 0.0, 1e-18);
}

TEST(CheckpointTest, RestoreUnderDifferentSegmentSizeFails) {
  // The checkpoint is written in block units; restoring under a
  // different segment grid must fail loudly, not corrupt data.
  const std::string scratch =
      (std::filesystem::temp_directory_path() / "sia_ck_seg_test")
          .string();
  std::filesystem::remove_all(scratch);
  {
    Sip sip(ck_config(2, scratch));
    sip.run_source(kFillAndCheckpoint);
  }
  {
    SipConfig config = ck_config(2, scratch);
    config.default_segment = 9;  // one block per dimension instead of 3
    Sip sip(config);
    EXPECT_THROW(sip.run_source(kRestoreAndVerify), RuntimeError);
  }
  std::filesystem::remove_all(scratch);
}

TEST(CheckpointTest, RestoreOfWrongArrayNameFails) {
  Sip sip(ck_config(2));
  sip.run_source(kFillAndCheckpoint);
  EXPECT_THROW(sip.run_source(R"(
sial reader
moindex i = 1, n
moindex j = 1, n
distributed other(i,j)
restore other "state"
endsial
)"),
               RuntimeError);
}

TEST(CheckpointTest, RestoreOfMissingKeyFails) {
  Sip sip(ck_config(2));
  EXPECT_THROW(sip.run_source(R"(
sial reader
moindex i = 1, n
distributed d(i)
restore d "never_written"
endsial
)"),
               RuntimeError);
}

// ---------------------------------------------------------------------
// Low-level file format.

TEST(CheckpointFormatTest, SanitizeKey) {
  using checkpoint::sanitize_key;
  EXPECT_EQ(sanitize_key("simple-name_1"), "simple-name_1");
  EXPECT_EQ(sanitize_key("../evil/path"), "___evil_path");
  EXPECT_EQ(sanitize_key(""), "checkpoint");
}

TEST(CheckpointFormatTest, ManifestRoundTrip) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "sia_manifest_test")
          .string();
  std::filesystem::create_directories(dir);
  checkpoint::Manifest manifest;
  manifest.array_name = "amps";
  manifest.parts = 5;
  manifest.total_blocks = 77;
  checkpoint::write_manifest(dir, "key1", manifest);
  const checkpoint::Manifest got = checkpoint::read_manifest(dir, "key1");
  EXPECT_EQ(got.array_name, "amps");
  EXPECT_EQ(got.parts, 5);
  EXPECT_EQ(got.total_blocks, 77);
  std::filesystem::remove_all(dir);
}

TEST(CheckpointFormatTest, MissingManifestThrows) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "sia_manifest_missing")
          .string();
  std::filesystem::create_directories(dir);
  EXPECT_THROW(checkpoint::read_manifest(dir, "absent"), RuntimeError);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace sia::sip
