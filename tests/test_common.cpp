// Unit tests for the common utilities.
#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include "common/config.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/timer.hpp"

namespace sia {
namespace {

TEST(SipConfigTest, DefaultsValidate) {
  SipConfig config;
  EXPECT_NO_THROW(config.validate());
  EXPECT_EQ(config.total_ranks(), 1 + config.workers + config.io_servers);
}

TEST(SipConfigTest, RejectsBadWorkerCount) {
  SipConfig config;
  config.workers = 0;
  EXPECT_THROW(config.validate(), Error);
}

TEST(SipConfigTest, RejectsBadSegment) {
  SipConfig config;
  config.default_segment = 0;
  EXPECT_THROW(config.validate(), Error);
}

TEST(SipConfigTest, RejectsBadSegmentOverride) {
  SipConfig config;
  config.segment_overrides["moindex"] = -1;
  EXPECT_THROW(config.validate(), Error);
}

TEST(SipConfigTest, RejectsNegativePrefetch) {
  SipConfig config;
  config.prefetch_depth = -1;
  EXPECT_THROW(config.validate(), Error);
}

TEST(SipConfigTest, SegmentForUsesOverride) {
  SipConfig config;
  config.default_segment = 8;
  config.segment_overrides["moindex"] = 4;
  EXPECT_EQ(config.segment_for("moindex"), 4);
  EXPECT_EQ(config.segment_for("aoindex"), 8);
}

TEST(SipConfigTest, RankLayout) {
  SipConfig config;
  config.workers = 3;
  config.io_servers = 2;
  EXPECT_EQ(config.master_rank(), 0);
  EXPECT_EQ(config.first_worker_rank(), 1);
  EXPECT_EQ(config.first_server_rank(), 4);
  EXPECT_EQ(config.total_ranks(), 6);
}

TEST(ErrorTest, CompileErrorCarriesLine) {
  CompileError error("bad token", 42);
  EXPECT_EQ(error.line(), 42);
  EXPECT_NE(std::string(error.what()).find("42"), std::string::npos);
}

TEST(ErrorTest, InfeasibleErrorCarriesWorkerCount) {
  InfeasibleError error("too big", 128);
  EXPECT_EQ(error.workers_needed(), 128);
  EXPECT_NE(std::string(error.what()).find("128"), std::string::npos);
}

TEST(ErrorTest, CheckMacroThrowsInternalError) {
  EXPECT_THROW(SIA_CHECK(false, "should fire"), InternalError);
  EXPECT_NO_THROW(SIA_CHECK(true, "should not fire"));
}

TEST(RngTest, SplitmixIsDeterministic) {
  EXPECT_EQ(splitmix64(12345), splitmix64(12345));
  EXPECT_NE(splitmix64(12345), splitmix64(12346));
}

TEST(RngTest, UnitDoubleInRange) {
  for (std::uint64_t k = 0; k < 1000; ++k) {
    const double x = unit_double(k);
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, HashCombineOrderSensitive) {
  const std::uint64_t a = hash_combine(hash_combine(1, 2), 3);
  const std::uint64_t b = hash_combine(hash_combine(1, 3), 2);
  EXPECT_NE(a, b);
}

TEST(StatsTest, RunningStatsBasics) {
  RunningStats stats;
  for (const double x : {1.0, 2.0, 3.0, 4.0}) stats.add(x);
  EXPECT_EQ(stats.count(), 4);
  EXPECT_DOUBLE_EQ(stats.mean(), 2.5);
  EXPECT_DOUBLE_EQ(stats.min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.max(), 4.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 10.0);
  EXPECT_NEAR(stats.stddev(), 1.2909944487, 1e-9);
}

TEST(StatsTest, EmptyStatsAreZero) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.stddev(), 0.0);
}

TEST(StatsTest, TablePrinterFormatsRows) {
  std::ostringstream out;
  TablePrinter table(out, {"a", "b"}, {6, 8});
  table.print_header();
  table.print_row({"1", "2.50"});
  const std::string text = out.str();
  EXPECT_NE(text.find("a"), std::string::npos);
  EXPECT_NE(text.find("2.50"), std::string::npos);
  EXPECT_NE(text.find("------"), std::string::npos);
}

TEST(StatsTest, TablePrinterRejectsWrongCellCount) {
  std::ostringstream out;
  TablePrinter table(out, {"a"}, {4});
  EXPECT_THROW(table.print_row({"1", "2"}), InternalError);
}

TEST(StatsTest, NumFormatsDigits) {
  EXPECT_EQ(TablePrinter::num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::num(2.0, 0), "2");
}

TEST(TimerTest, StopwatchAccumulates) {
  Stopwatch watch;
  watch.start();
  const double dt = watch.stop();
  EXPECT_GE(dt, 0.0);
  EXPECT_EQ(watch.intervals(), 1);
  EXPECT_GE(watch.total(), dt);
}

TEST(TimerTest, ScopedTimerStops) {
  Stopwatch watch;
  { ScopedTimer timer(watch); }
  EXPECT_FALSE(watch.running());
  EXPECT_EQ(watch.intervals(), 1);
}

TEST(TimerTest, WallClockAdvances) {
  const double a = wall_seconds();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_GT(wall_seconds(), a);
}

}  // namespace
}  // namespace sia
