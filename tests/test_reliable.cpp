// Unit tests for the reliable delivery protocol (PR 4): the sender-side
// ReliableChannel (seq stamping, retransmit, backoff, give-up), the
// receiver-side PeerSequencer (in-order exactly-once delivery, holes,
// duplicates, after-dependencies, journal replay), and the FaultPlan
// parser that drives the chaos fabric.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "common/config.hpp"
#include "common/error.hpp"
#include "msg/fabric.hpp"
#include "msg/reliable.hpp"
#include "msg/tags.hpp"

namespace sia::msg {
namespace {

Message make(int tag, std::vector<std::int64_t> header = {}) {
  Message message;
  message.tag = tag;
  message.header = std::move(header);
  return message;
}

TEST(ReliableChannelTest, OrderedSeqsAreMonotonicPerDst) {
  Fabric fabric(3);
  ReliableChannel channel(&fabric, 0, 1000, 3);
  EXPECT_EQ(channel.send_ordered(1, make(kBlockPut)), 1u);
  EXPECT_EQ(channel.send_ordered(1, make(kBlockPut)), 2u);
  EXPECT_EQ(channel.send_ordered(2, make(kBlockPut)), 1u);
  EXPECT_EQ(fabric.try_recv(1)->seq, 1u);
  EXPECT_EQ(fabric.try_recv(1)->seq, 2u);
  EXPECT_EQ(fabric.try_recv(2)->seq, 1u);
  EXPECT_EQ(channel.unacked_count(), 3u);
}

TEST(ReliableChannelTest, RequestIdsCarryTopBitAndAfterDependency) {
  Fabric fabric(2);
  ReliableChannel channel(&fabric, 0, 1000, 3);
  const std::uint64_t ordered = channel.send_ordered(1, make(kBlockPutAcc));
  const std::uint64_t request =
      channel.send_request(1, make(kBlockGetRequest));
  EXPECT_NE(request & kRequestIdBit, 0u);
  (void)fabric.try_recv(1);
  auto got = fabric.try_recv(1);
  ASSERT_TRUE(got.has_value());
  // The request names the last ordered seq so the receiver applies the
  // accumulate before serving the (otherwise reorderable) read.
  EXPECT_EQ(got->ack, ordered);
}

TEST(ReliableChannelTest, AckClearsEntry) {
  Fabric fabric(2);
  ReliableChannel channel(&fabric, 0, 1000, 3);
  const std::uint64_t seq = channel.send_ordered(1, make(kBlockPut));
  EXPECT_FALSE(channel.idle());
  channel.on_ack(1, seq);
  EXPECT_TRUE(channel.idle());
  // A stale duplicate ack is harmless.
  channel.on_ack(1, seq);
  EXPECT_TRUE(channel.idle());
}

TEST(ReliableChannelTest, PollRetransmitsOverdueSends) {
  Fabric fabric(2);
  ReliableChannel channel(&fabric, 0, 10, 5);
  channel.send_ordered(1, make(kBlockPut, {42}));
  (void)fabric.try_recv(1);  // original delivery, never acked
  std::this_thread::sleep_for(std::chrono::milliseconds(25));
  channel.poll();
  auto again = fabric.try_recv(1);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->seq, 1u);
  EXPECT_EQ(again->header[0], 42);
  EXPECT_GE(channel.stats().retries_sent, 1);
}

TEST(ReliableChannelTest, ExhaustedRetriesThrowNamingTheRank) {
  Fabric fabric(2);
  ReliableChannel channel(&fabric, 0, 1, 2);
  channel.send_ordered(1, make(kBlockPut));
  bool threw = false;
  for (int i = 0; i < 50 && !threw; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    try {
      channel.poll();
    } catch (const RuntimeError& error) {
      threw = true;
      EXPECT_NE(std::string(error.what()).find("rank 1"), std::string::npos);
      EXPECT_NE(std::string(error.what()).find("unresponsive"),
                std::string::npos);
    }
  }
  EXPECT_TRUE(threw);
  EXPECT_EQ(channel.stats().acks_timed_out, 1);
}

TEST(ReliableChannelTest, UnackedOrderedDstsExcludesRequests) {
  Fabric fabric(4);
  ReliableChannel channel(&fabric, 0, 1000, 3);
  channel.send_ordered(1, make(kServedPrepare));
  channel.send_request(2, make(kServedRequest));
  const std::vector<int> dsts = channel.unacked_ordered_dsts();
  ASSERT_EQ(dsts.size(), 1u);
  EXPECT_EQ(dsts[0], 1);
}

TEST(PeerSequencerTest, InOrderStreamDeliversImmediately) {
  PeerSequencer sequencer;
  for (std::uint64_t seq = 1; seq <= 3; ++seq) {
    Message msg = make(kBlockPut);
    msg.src = 1;
    msg.seq = seq;
    const auto admit = sequencer.admit_ordered(std::move(msg));
    ASSERT_EQ(admit.deliver.size(), 1u);
    EXPECT_EQ(admit.deliver[0].seq, seq);
    EXPECT_FALSE(admit.duplicate);
  }
}

TEST(PeerSequencerTest, HoleHoldsEarlyArrivalsUntilFilled) {
  PeerSequencer sequencer;
  Message late = make(kBlockPut);
  late.src = 1;
  late.seq = 2;  // seq 1 still missing (in flight or dropped)
  EXPECT_TRUE(sequencer.admit_ordered(std::move(late)).deliver.empty());
  Message first = make(kBlockPut);
  first.src = 1;
  first.seq = 1;
  const auto admit = sequencer.admit_ordered(std::move(first));
  ASSERT_EQ(admit.deliver.size(), 2u);
  EXPECT_EQ(admit.deliver[0].seq, 1u);
  EXPECT_EQ(admit.deliver[1].seq, 2u);
}

TEST(PeerSequencerTest, DuplicatesAreDroppedAndFlagged) {
  PeerSequencer sequencer;
  Message msg = make(kBlockPutAcc);
  msg.src = 2;
  msg.seq = 1;
  EXPECT_EQ(sequencer.admit_ordered(Message(msg)).deliver.size(), 1u);
  // The retransmitted accumulate must not apply twice.
  const auto again = sequencer.admit_ordered(Message(msg));
  EXPECT_TRUE(again.deliver.empty());
  EXPECT_TRUE(again.duplicate);
  EXPECT_EQ(sequencer.duplicates_dropped(), 1);
  // A held (not yet applied) seq re-arriving is also a duplicate.
  Message early = make(kBlockPutAcc);
  early.src = 2;
  early.seq = 5;
  EXPECT_FALSE(sequencer.admit_ordered(Message(early)).duplicate);
  EXPECT_TRUE(sequencer.admit_ordered(Message(early)).duplicate);
}

TEST(PeerSequencerTest, RequestsWaitForTheirOrderedDependency) {
  PeerSequencer sequencer;
  Message request = make(kBlockGetRequest);
  request.src = 1;
  request.seq = kRequestIdBit | 1;
  request.ack = 2;  // must follow ordered seq 2
  EXPECT_TRUE(sequencer.admit_after(Message(request)).deliver.empty());
  Message p1 = make(kBlockPut);
  p1.src = 1;
  p1.seq = 1;
  EXPECT_EQ(sequencer.admit_ordered(std::move(p1)).deliver.size(), 1u);
  Message p2 = make(kBlockPut);
  p2.src = 1;
  p2.seq = 2;
  const auto admit = sequencer.admit_ordered(std::move(p2));
  // Applying seq 2 releases both the put and the dependent request.
  ASSERT_EQ(admit.deliver.size(), 2u);
  EXPECT_EQ(admit.deliver[0].tag, kBlockPut);
  EXPECT_EQ(admit.deliver[1].tag, kBlockGetRequest);
  // No dependency -> immediate.
  Message free_req = make(kBlockGetRequest);
  free_req.src = 1;
  free_req.seq = kRequestIdBit | 2;
  free_req.ack = 0;
  EXPECT_EQ(sequencer.admit_after(std::move(free_req)).deliver.size(), 1u);
}

TEST(PeerSequencerTest, MarkAppliedReplaysJournalHoles) {
  // An I/O-server respawn replays its ack journal: seqs 1 and 3 were
  // durable, 2 was lost with the cache. The retransmitted 2 must deliver,
  // retransmits of 1 and 3 must dedup (and re-ack).
  PeerSequencer sequencer;
  sequencer.mark_applied(1, 1);
  sequencer.mark_applied(1, 3);
  EXPECT_TRUE(sequencer.is_applied(1, 1));
  EXPECT_FALSE(sequencer.is_applied(1, 2));
  Message dup = make(kServedPrepare);
  dup.src = 1;
  dup.seq = 1;
  EXPECT_TRUE(sequencer.admit_ordered(std::move(dup)).duplicate);
  Message lost = make(kServedPrepare);
  lost.src = 1;
  lost.seq = 2;
  const auto admit = sequencer.admit_ordered(std::move(lost));
  ASSERT_EQ(admit.deliver.size(), 1u);
  EXPECT_EQ(admit.deliver[0].seq, 2u);
  // The journaled hole at 3 is skipped, so 4 is next.
  Message next = make(kServedPrepare);
  next.src = 1;
  next.seq = 4;
  EXPECT_EQ(sequencer.admit_ordered(std::move(next)).deliver.size(), 1u);
}

TEST(FaultPlanTest, ParsesTheDocumentedExample) {
  const FaultPlan plan =
      FaultPlan::parse("drop=0.01,delay_ms=5,kill_rank=5@msg:200,seed=42");
  EXPECT_DOUBLE_EQ(plan.drop, 0.01);
  EXPECT_EQ(plan.delay_ms, 5);
  EXPECT_EQ(plan.kill_rank, 5);
  EXPECT_EQ(plan.kill_at_msg, 200);
  EXPECT_EQ(plan.seed, 42u);
  EXPECT_TRUE(plan.active());
}

TEST(FaultPlanTest, ParsesDiskFaults) {
  const FaultPlan plan = FaultPlan::parse("disk=eio@op:17");
  EXPECT_EQ(plan.disk_fault, 1);
  EXPECT_EQ(plan.disk_fault_at_op, 17);
  EXPECT_TRUE(plan.active());
  EXPECT_EQ(FaultPlan::parse("disk=enospc@op:3").disk_fault, 2);
  EXPECT_EQ(FaultPlan::parse("disk=short@op:3").disk_fault, 3);
}

TEST(FaultPlanTest, EmptyStringIsInactive) {
  const FaultPlan plan = FaultPlan::parse("");
  EXPECT_FALSE(plan.active());
}

TEST(FaultPlanTest, RejectsMalformedInput) {
  EXPECT_THROW(FaultPlan::parse("bogus_key=1"), Error);
  EXPECT_THROW(FaultPlan::parse("drop=notanumber"), Error);
  EXPECT_THROW(FaultPlan::parse("drop"), Error);
  EXPECT_THROW(FaultPlan::parse("kill_rank=2@op:3"), Error);  // wrong marker
  EXPECT_THROW(FaultPlan::parse("disk=eio@msg:3"), Error);
  EXPECT_THROW(FaultPlan::parse("disk=maybe@op:1"), Error);
  // A bare kill_rank / disk fault defaults its trigger to 1.
  EXPECT_EQ(FaultPlan::parse("kill_rank=2").kill_at_msg, 1);
  EXPECT_EQ(FaultPlan::parse("disk=eio").disk_fault_at_op, 1);
}

TEST(FaultPlanTest, RejectsOutOfRangeValues) {
  EXPECT_THROW(FaultPlan::parse("drop=1.5"), Error);
  EXPECT_THROW(FaultPlan::parse("dup=-0.1"), Error);
  EXPECT_THROW(FaultPlan::parse("delay_ms=-3"), Error);
  FaultPlan plan;
  plan.kill_rank = 2;  // a kill with no @msg:N trigger is meaningless
  EXPECT_THROW(plan.validate(), Error);
  plan.kill_at_msg = 5;
  EXPECT_NO_THROW(plan.validate());
}

}  // namespace
}  // namespace sia::msg
