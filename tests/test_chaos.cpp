// Chaos matrix: deterministic fault plans over real SIAL programs.
//
// Every case runs a full SIP launch under an injected fault family
// (message drop, duplication, delay/reorder, scheduled rank kill, disk
// fault) and demands one of exactly two outcomes: the run completes with
// results identical to the fault-free baseline, or it aborts with a
// diagnostic naming the fault. A hang is never acceptable — each run
// executes under a hard deadline and the process aborts if it is missed.
//
// All decisions derive from {seed, plan}, so any failing seed here
// reproduces exactly under a debugger.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <string>

#include "chem/integrals.hpp"
#include "chem/programs.hpp"
#include "common/config.hpp"
#include "common/error.hpp"
#include "sip/launch.hpp"

namespace sia::sip {
namespace {

// Distributed-array storm with integer-valued blocks: puts, accumulating
// puts, and gets between workers — the full worker-to-worker protocol
// surface. fill_coords writes integer elements, so cnorm2 is a sum of
// integer squares: bit-identical under any message schedule or chunk
// assignment, while a lost or double-applied `put +=` shifts it by a
// whole integer. (The chem programs' float workloads can't distinguish
// scheduling noise from protocol corruption at the bit level.)
std::string dist_storm_source() {
  return R"SIAL(
sial dist_storm
aoindex a = 1, norb
aoindex k = 1, norb

distributed A(a,k)
temp t(a,k)
temp u(a,k)
scalar csum
scalar cnorm2

pardo a, k
  execute fill_coords t(a,k)
  put A(a,k) = t(a,k)
endpardo a, k
sip_barrier

pardo a, k
  execute fill_coords u(a,k)
  put A(a,k) += u(a,k)
endpardo a, k
sip_barrier

csum = 0.0
pardo a, k
  get A(a,k)
  t(a,k) = A(a,k)
  csum += t(a,k) * t(a,k)
endpardo a, k
cnorm2 = 0.0
collective cnorm2 += csum
endsial
)SIAL";
}

SipConfig dist_config() {
  SipConfig config;
  config.workers = 2;
  config.io_servers = 1;
  config.default_segment = 4;
  config.retry_timeout_ms = 50;
  config.constants = {{"norb", 16}};
  return config;
}

// io_storm shrunk to test size: served-array prepares and reads through
// an undersized server cache (heavy eviction and disk traffic). The
// snorm2 checksum is integer-valued, bit-identical under any order.
SipConfig storm_config() {
  chem::register_chem_superinstructions();
  SipConfig config;
  config.workers = 2;
  config.io_servers = 1;
  config.default_segment = 8;
  config.server_cache_bytes = 8 * 8 * 8 * sizeof(double);  // 8 blocks
  config.server_disk_threads = 2;
  config.prefetch_depth = 2;
  config.retry_timeout_ms = 50;
  config.constants = {{"norb", 64}, {"nsweeps", 1}, {"nshared", 32}};
  return config;
}

// Runs the program under a hard wall-clock deadline. A chaos run that
// neither completes nor aborts is the one outcome the fault-tolerance
// machinery must never allow, so a missed deadline kills the process.
RunResult run_with_deadline(const SipConfig& config,
                            const std::string& source,
                            int deadline_seconds = 120) {
  auto task = std::async(std::launch::async, [&config, &source] {
    Sip sip(config);
    return sip.run_source(source);
  });
  if (task.wait_for(std::chrono::seconds(deadline_seconds)) !=
      std::future_status::ready) {
    std::fprintf(stderr,
                 "chaos run exceeded the %d s deadline (hang) — aborting\n",
                 deadline_seconds);
    std::fflush(stderr);
    std::abort();
  }
  return task.get();  // rethrows the run's error, if any
}

RunResult run_with_plan(SipConfig config, const std::string& source,
                        const std::string& plan) {
  config.fault_plan = FaultPlan::parse(plan);
  return run_with_deadline(config, source);
}

double dist_baseline() {
  static const double value =
      run_with_deadline(dist_config(), dist_storm_source())
          .scalar("cnorm2");
  return value;
}

double storm_baseline() {
  static const double value =
      run_with_deadline(storm_config(), chem::io_storm_source())
          .scalar("snorm2");
  return value;
}

// ---------------------------------------------------------------------
// Matrix: random loss / duplication / delay families, 20 seeds each on
// dist_storm, a smaller sweep on io_storm. Completion must be bit-identical.

TEST(ChaosMatrixTest, DroppedMessagesAreRetransmitted) {
  const double baseline = dist_baseline();
  std::int64_t dropped = 0;
  std::int64_t retries = 0;
  for (int seed = 1; seed <= 20; ++seed) {
    const RunResult result =
        run_with_plan(dist_config(), dist_storm_source(),
                      "drop=0.01,seed=" + std::to_string(seed));
    EXPECT_EQ(result.scalar("cnorm2"), baseline) << "seed " << seed;
    dropped += result.profile.robustness.faults_dropped;
    retries += result.profile.robustness.retries_sent;
  }
  // The matrix must actually have exercised the loss path.
  EXPECT_GT(dropped, 0);
  EXPECT_GT(retries, 0);
}

TEST(ChaosMatrixTest, DuplicatedMessagesApplyExactlyOnce) {
  const double baseline = dist_baseline();
  std::int64_t duplicated = 0;
  for (int seed = 1; seed <= 20; ++seed) {
    const RunResult result =
        run_with_plan(dist_config(), dist_storm_source(),
                      "dup=0.02,seed=" + std::to_string(seed));
    // A double-applied `put +=` would shift cnorm2 — bit-equality is the
    // exactly-once assertion.
    EXPECT_EQ(result.scalar("cnorm2"), baseline) << "seed " << seed;
    duplicated += result.profile.robustness.faults_duplicated;
  }
  EXPECT_GT(duplicated, 0);
}

TEST(ChaosMatrixTest, DelayAndReorderConverge) {
  const double baseline = dist_baseline();
  std::int64_t perturbed = 0;
  for (int seed = 1; seed <= 20; ++seed) {
    const RunResult result = run_with_plan(
        dist_config(), dist_storm_source(),
        "delay_ms=3,delay_jitter_ms=4,reorder=0.05,seed=" +
            std::to_string(seed));
    EXPECT_EQ(result.scalar("cnorm2"), baseline) << "seed " << seed;
    perturbed += result.profile.robustness.faults_delayed +
                 result.profile.robustness.faults_reordered;
  }
  EXPECT_GT(perturbed, 0);
}

TEST(ChaosMatrixTest, IoStormSurvivesLossAndDuplication) {
  const double baseline = storm_baseline();
  std::int64_t injected = 0;
  for (int seed = 1; seed <= 6; ++seed) {
    const RunResult result =
        run_with_plan(storm_config(), chem::io_storm_source(),
                      "drop=0.01,dup=0.01,seed=" + std::to_string(seed));
    EXPECT_EQ(result.scalar("snorm2"), baseline) << "seed " << seed;
    injected += result.profile.robustness.faults_injected();
  }
  EXPECT_GT(injected, 0);
}

// ---------------------------------------------------------------------
// I/O-server crash recovery: kill the (only) server at its Nth message.
// The master's watchdog must respawn it, the respawned server rebuilds
// from its durable files + ack journal, client retransmits repopulate the
// rest, and the checksum comes out bit-identical.

TEST(ChaosRecoveryTest, ServerKillRecoversBitIdentically) {
  const double baseline = storm_baseline();
  const SipConfig config = storm_config();
  const int server_rank = config.first_server_rank();  // rank 3
  for (const int at_msg : {10, 25, 40, 60, 80}) {
    const RunResult result = run_with_plan(
        config, chem::io_storm_source(),
        "kill_rank=" + std::to_string(server_rank) +
            "@msg:" + std::to_string(at_msg) + ",seed=1");
    EXPECT_EQ(result.scalar("snorm2"), baseline) << "kill at " << at_msg;
    EXPECT_EQ(result.profile.robustness.server_recoveries, 1)
        << "kill at " << at_msg;
    EXPECT_GT(result.profile.robustness.faults_kill_swallowed, 0)
        << "kill at " << at_msg;
  }
}

// ---------------------------------------------------------------------
// Abort propagation (regression): a worker killed mid-run must bring the
// whole launch down with the watchdog's diagnosis — not a hang, and not a
// generic "aborted" that lost the first error.

TEST(ChaosAbortTest, WorkerKillAbortsWithDiagnosis) {
  const auto start = std::chrono::steady_clock::now();
  try {
    run_with_plan(dist_config(), dist_storm_source(),
                  "kill_rank=1@msg:10,seed=1");
    FAIL() << "run with a dead worker completed";
  } catch (const RuntimeError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("worker rank 1 unresponsive"), std::string::npos)
        << what;
    EXPECT_NE(what.find("missed"), std::string::npos) << what;
  }
  // All ranks exited within a few watchdog intervals (misses * 100 ms
  // plus teardown slack), far under this bound.
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_LT(seconds, 20.0);
}

TEST(ChaosAbortTest, DiskFaultAbortsWithDiagnosis) {
  for (const char* plan : {"disk=eio@op:5,seed=1", "disk=enospc@op:9,seed=1"}) {
    try {
      run_with_plan(storm_config(), chem::io_storm_source(), plan);
      FAIL() << "run with an injected disk fault completed (" << plan << ")";
    } catch (const RuntimeError& error) {
      EXPECT_NE(std::string(error.what()).find("injected disk fault"),
                std::string::npos)
          << plan << ": " << error.what();
    }
  }
}

// ---------------------------------------------------------------------
// SIA_FAULT_PLAN environment pickup.

struct EnvGuard {
  explicit EnvGuard(const char* value) {
    ::setenv("SIA_FAULT_PLAN", value, 1);
  }
  ~EnvGuard() { ::unsetenv("SIA_FAULT_PLAN"); }
};

TEST(FaultPlanEnvTest, PlanFromEnvironmentIsApplied) {
  const double baseline = dist_baseline();
  EnvGuard guard("delay_ms=2,seed=9");
  const RunResult result =
      run_with_deadline(dist_config(), dist_storm_source());
  EXPECT_EQ(result.scalar("cnorm2"), baseline);
  EXPECT_GT(result.profile.robustness.faults_delayed, 0);
}

TEST(FaultPlanEnvTest, MalformedEnvironmentPlanIsRejected) {
  EnvGuard guard("drop=2.0");
  Sip sip(dist_config());
  EXPECT_THROW(sip.run_source(dist_storm_source()), Error);
}

// ---------------------------------------------------------------------
// Reliable protocol without any faults: pure overhead path. Must be
// bit-identical and must not retransmit anything.

TEST(ReliableProtocolTest, FaultFreeRunIsBitIdenticalWithNoRetries) {
  const double baseline = dist_baseline();
  SipConfig config = dist_config();
  config.reliable_protocol = true;
  const RunResult result =
      run_with_deadline(config, dist_storm_source());
  EXPECT_EQ(result.scalar("cnorm2"), baseline);
  EXPECT_EQ(result.profile.robustness.retries_sent, 0);
  EXPECT_EQ(result.profile.robustness.acks_timed_out, 0);
  EXPECT_EQ(result.profile.robustness.faults_injected(), 0);
}

// ---------------------------------------------------------------------
// Dataflow executor under chaos: workers with an instruction window must
// keep the two-outcome contract. Masked faults (loss, duplication) must
// complete with the integer-valued checksum bit-identical — retransmits
// and dedup land between out-of-order issue and in-order retire — and
// fatal faults must abort with the original diagnosis after a clean
// window drain (cancel() drops unstarted entries instead of hanging on
// operands that will never arrive).

TEST(ChaosExecutorTest, ThreadedWorkersSurviveLossAndDuplication) {
  const double baseline = dist_baseline();
  SipConfig config = dist_config();
  config.worker_threads = 2;
  std::int64_t injected = 0;
  for (int seed = 1; seed <= 5; ++seed) {
    const RunResult result =
        run_with_plan(config, dist_storm_source(),
                      "drop=0.01,dup=0.02,seed=" + std::to_string(seed));
    EXPECT_EQ(result.scalar("cnorm2"), baseline) << "seed " << seed;
    // The window must actually have been exercised under the faults.
    EXPECT_GT(result.profile.executor.entries_retired, 0) << "seed " << seed;
    injected += result.profile.robustness.faults_injected();
  }
  EXPECT_GT(injected, 0);
}

TEST(ChaosExecutorTest, ThreadedWorkerKillAbortsWithCleanDrain) {
  SipConfig config = dist_config();
  config.worker_threads = 2;
  const auto start = std::chrono::steady_clock::now();
  try {
    run_with_plan(config, dist_storm_source(), "kill_rank=1@msg:10,seed=1");
    FAIL() << "threaded run with a dead worker completed";
  } catch (const RuntimeError& error) {
    EXPECT_NE(std::string(error.what()).find("unresponsive"),
              std::string::npos)
        << error.what();
  }
  // The abort path cancels the window (pending operands never resolve);
  // a few watchdog intervals plus teardown, never a hang.
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_LT(seconds, 20.0);
}

// ---------------------------------------------------------------------
// Screening under chaos: served sparse traffic at a real threshold.
// Phase 1 prepares a tridiagonal block band — the exactly-zero blocks
// outside it travel as norm-only markers. Phase 2 accumulates a wider
// (pentadiagonal) band on top: the contributions outside it are dropped
// at the sender, and the |a-k| = 2 ones land on blocks that only ever
// saw a marker, exercising absent-reads-as-zero accumulate. The blocks
// are integer-valued (fill_coords), so snorm2 is a sum of integer
// squares: bit-identical under any message schedule, while a replayed
// marker, a lost prepare, or a double-applied accumulate shifts it by a
// whole integer. The fault-free screened run is the baseline.

std::string sparse_storm_source() {
  return R"SIAL(
sial sparse_storm
aoindex a = 1, norb
aoindex k = 1, norb

sparse served S(a,k)
temp t(a,k)
temp u(a,k)
scalar lsum
scalar snorm2

pardo a, k
  execute fill_coords t(a,k)
  if a - k > 1
    t(a,k) = 0.0
  endif
  if k - a > 1
    t(a,k) = 0.0
  endif
  prepare S(a,k) = t(a,k)
endpardo a, k
server_barrier

pardo a, k
  execute fill_coords u(a,k)
  if a - k > 2
    u(a,k) = 0.0
  endif
  if k - a > 2
    u(a,k) = 0.0
  endif
  prepare S(a,k) += u(a,k)
endpardo a, k
server_barrier

lsum = 0.0
pardo a, k
  request S(a,k)
  t(a,k) = S(a,k)
  lsum += t(a,k) * t(a,k)
endpardo a, k
snorm2 = 0.0
collective snorm2 += lsum
endsial
)SIAL";
}

SipConfig sparse_storm_config() {
  chem::register_chem_superinstructions();
  SipConfig config;
  config.workers = 2;
  config.io_servers = 1;
  config.default_segment = 8;
  config.retry_timeout_ms = 50;
  config.sparse_threshold = 1e-8;
  config.constants = {{"norb", 64}};
  return config;
}

TEST(ChaosScreeningTest, ScreenedPreparesStayExactlyOnce) {
  const RunResult base =
      run_with_deadline(sparse_storm_config(), sparse_storm_source());
  // The baseline itself must exercise the screened protocol surface.
  ASSERT_GT(base.profile.screening.prepares_screened, 0);
  ASSERT_GT(base.profile.screening.requests_screened, 0);
  const double baseline = base.scalar("snorm2");
  std::int64_t injected = 0;
  std::int64_t screened = 0;
  for (int seed = 1; seed <= 10; ++seed) {
    const RunResult result =
        run_with_plan(sparse_storm_config(), sparse_storm_source(),
                      "drop=0.02,dup=0.02,seed=" + std::to_string(seed));
    EXPECT_EQ(result.scalar("snorm2"), baseline) << "seed " << seed;
    injected += result.profile.robustness.faults_injected();
    screened += result.profile.screening.prepares_screened;
  }
  EXPECT_GT(injected, 0);
  EXPECT_GT(screened, 0);
}

TEST(ChaosExecutorTest, EnvironmentPlanAppliesToThreadedRun) {
  const double baseline = dist_baseline();
  EnvGuard guard("dup=0.02,seed=7");
  SipConfig config = dist_config();
  config.worker_threads = 2;
  const RunResult result = run_with_deadline(config, dist_storm_source());
  EXPECT_EQ(result.scalar("cnorm2"), baseline);
  EXPECT_GT(result.profile.robustness.faults_duplicated, 0);
  EXPECT_GT(result.profile.executor.entries_retired, 0);
}

}  // namespace
}  // namespace sia::sip
