// Unit tests for the dense kernels (DGEMM, permutations, element-wise).
#include <gtest/gtest.h>

#include <numeric>
#include <tuple>
#include <vector>

#include "blas/elementwise.hpp"
#include "blas/gemm.hpp"
#include "blas/permute.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"

namespace sia::blas {
namespace {

std::vector<double> random_matrix(std::size_t n, std::uint64_t seed) {
  std::vector<double> m(n);
  for (std::size_t i = 0; i < n; ++i) {
    m[i] = 2.0 * unit_double(hash_combine(seed, i)) - 1.0;
  }
  return m;
}

// ---------------------------------------------------------------------
// GEMM: blocked kernel vs naive reference across shapes, alpha/beta.

class GemmSizes : public ::testing::TestWithParam<std::tuple<int, int, int>> {
};

TEST_P(GemmSizes, MatchesNaive) {
  const auto [m, n, k] = GetParam();
  const auto a = random_matrix(static_cast<std::size_t>(m * k), 1);
  const auto b = random_matrix(static_cast<std::size_t>(k * n), 2);
  auto c1 = random_matrix(static_cast<std::size_t>(m * n), 3);
  auto c2 = c1;

  dgemm(m, n, k, 1.3, a.data(), k, b.data(), n, 0.7, c1.data(), n);
  dgemm_naive(m, n, k, 1.3, a.data(), k, b.data(), n, 0.7, c2.data(), n);
  for (std::size_t i = 0; i < c1.size(); ++i) {
    EXPECT_NEAR(c1[i], c2[i], 1e-11) << "element " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmSizes,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(3, 5, 7),
                      std::make_tuple(16, 16, 16), std::make_tuple(33, 17, 9),
                      std::make_tuple(64, 64, 64), std::make_tuple(70, 130, 50),
                      std::make_tuple(128, 64, 129),
                      std::make_tuple(1, 200, 3)));

TEST(GemmTest, BetaZeroOverwritesGarbage) {
  const std::size_t n = 8;
  const auto a = random_matrix(n * n, 4);
  const auto b = random_matrix(n * n, 5);
  std::vector<double> c(n * n, std::numeric_limits<double>::quiet_NaN());
  dgemm(n, n, n, 1.0, a.data(), n, b.data(), n, 0.0, c.data(), n);
  for (const double v : c) EXPECT_TRUE(std::isfinite(v));
}

TEST(GemmTest, AlphaZeroOnlyScalesC) {
  const std::size_t n = 6;
  const auto a = random_matrix(n * n, 6);
  const auto b = random_matrix(n * n, 7);
  auto c = random_matrix(n * n, 8);
  const auto original = c;
  dgemm(n, n, n, 0.0, a.data(), n, b.data(), n, 2.0, c.data(), n);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_DOUBLE_EQ(c[i], 2.0 * original[i]);
  }
}

TEST(GemmTest, RespectsLeadingDimensions) {
  // 2x2 product embedded in larger strided storage.
  const std::size_t lda = 5, ldb = 4, ldc = 7;
  std::vector<double> a(2 * lda, 0.0), b(2 * ldb, 0.0), c(2 * ldc, -1.0);
  a[0] = 1; a[1] = 2; a[lda] = 3; a[lda + 1] = 4;
  b[0] = 5; b[1] = 6; b[ldb] = 7; b[ldb + 1] = 8;
  dgemm(2, 2, 2, 1.0, a.data(), lda, b.data(), ldb, 0.0, c.data(), ldc);
  EXPECT_DOUBLE_EQ(c[0], 19.0);
  EXPECT_DOUBLE_EQ(c[1], 22.0);
  EXPECT_DOUBLE_EQ(c[ldc], 43.0);
  EXPECT_DOUBLE_EQ(c[ldc + 1], 50.0);
  EXPECT_DOUBLE_EQ(c[2], -1.0);  // outside the logical matrix untouched
}

// ---------------------------------------------------------------------
// Gather GEMM: offset-table addressing must match a materialized
// transpose followed by plain dgemm.

TEST(GemmGatherTest, TransposedOperandsMatchNaive) {
  // A stored column-major (i.e. we multiply A^T), B stored row-major but
  // with shuffled column order; both expressed purely via offset tables.
  const std::size_t m = 37, n = 29, k = 41;
  const auto a_t = random_matrix(k * m, 11);  // a_t[p * m + i] = A(i, p)
  const auto b = random_matrix(k * n, 12);

  std::vector<std::size_t> a_row(m), a_col(k), b_row(k), b_col(n);
  for (std::size_t i = 0; i < m; ++i) a_row[i] = i;
  for (std::size_t p = 0; p < k; ++p) a_col[p] = p * m;
  for (std::size_t p = 0; p < k; ++p) b_row[p] = p * n;
  for (std::size_t j = 0; j < n; ++j) b_col[j] = n - 1 - j;  // reversed

  auto c1 = random_matrix(m * n, 13);
  auto c2 = c1;
  dgemm_gather(m, n, k, 1.1, a_t.data(), a_row.data(), a_col.data(),
               b.data(), b_row.data(), b_col.data(), 0.4, c1.data(), n);

  // Reference: materialize A and the column-reversed B, then naive.
  std::vector<double> a_mat(m * k), b_mat(k * n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t p = 0; p < k; ++p) a_mat[i * k + p] = a_t[p * m + i];
  }
  for (std::size_t p = 0; p < k; ++p) {
    for (std::size_t j = 0; j < n; ++j) {
      b_mat[p * n + j] = b[p * n + (n - 1 - j)];
    }
  }
  dgemm_naive(m, n, k, 1.1, a_mat.data(), k, b_mat.data(), n, 0.4, c2.data(),
              n);
  for (std::size_t i = 0; i < c1.size(); ++i) {
    EXPECT_NEAR(c1[i], c2[i], 1e-11) << "element " << i;
  }
}

TEST(GemmKernelTest, SelectionRoundTrip) {
  EXPECT_FALSE(gemm_kernel_name().empty());
  EXPECT_TRUE(select_gemm_kernel("portable"));
  EXPECT_EQ(gemm_kernel_name(), "portable-4x8");
  EXPECT_FALSE(select_gemm_kernel("no-such-kernel"));
  EXPECT_TRUE(select_gemm_kernel("auto"));
}

// ---------------------------------------------------------------------
// Permutations.

TEST(PermuteTest, Rank2Transpose) {
  const std::vector<int> dims = {2, 3};
  const std::vector<double> src = {1, 2, 3, 4, 5, 6};
  std::vector<double> dst(6);
  const std::vector<int> perm = {1, 0};
  permute(src.data(), dims, perm, dst.data());
  // dst is 3x2: dst[j][i] = src[i][j].
  EXPECT_EQ(dst, (std::vector<double>{1, 4, 2, 5, 3, 6}));
}

TEST(PermuteTest, IdentityIsCopy) {
  const std::vector<int> dims = {3, 2, 2};
  const auto src = random_matrix(12, 9);
  std::vector<double> dst(12);
  permute(src.data(), dims, std::vector<int>{0, 1, 2}, dst.data());
  EXPECT_EQ(dst, src);
}

TEST(PermuteTest, AccumulateAddsPermuted) {
  const std::vector<int> dims = {2, 2};
  const std::vector<double> src = {1, 2, 3, 4};
  std::vector<double> dst = {10, 10, 10, 10};
  permute_acc(src.data(), dims, std::vector<int>{1, 0}, dst.data());
  EXPECT_EQ(dst, (std::vector<double>{11, 13, 12, 14}));
}

// All 24 rank-4 permutations validated against direct index remapping.
class Rank4Perms : public ::testing::TestWithParam<std::array<int, 4>> {};

TEST_P(Rank4Perms, MatchesDirectRemap) {
  const std::array<int, 4> perm_array = GetParam();
  const std::vector<int> perm(perm_array.begin(), perm_array.end());
  const std::vector<int> dims = {2, 3, 4, 5};
  const auto src = random_matrix(120, 11);
  std::vector<double> dst(120);
  permute(src.data(), dims, perm, dst.data());

  const std::vector<int> out_dims = permuted_dims(dims, perm);
  std::vector<std::size_t> src_strides(4), dst_strides(4);
  src_strides[3] = 1;
  dst_strides[3] = 1;
  for (int d = 2; d >= 0; --d) {
    src_strides[d] = src_strides[d + 1] * static_cast<std::size_t>(dims[d + 1]);
    dst_strides[d] =
        dst_strides[d + 1] * static_cast<std::size_t>(out_dims[d + 1]);
  }
  int idx[4];
  for (idx[0] = 0; idx[0] < out_dims[0]; ++idx[0]) {
    for (idx[1] = 0; idx[1] < out_dims[1]; ++idx[1]) {
      for (idx[2] = 0; idx[2] < out_dims[2]; ++idx[2]) {
        for (idx[3] = 0; idx[3] < out_dims[3]; ++idx[3]) {
          std::size_t d_off = 0, s_off = 0;
          for (int d = 0; d < 4; ++d) {
            d_off += dst_strides[d] * static_cast<std::size_t>(idx[d]);
            s_off += src_strides[static_cast<std::size_t>(perm[d])] *
                     static_cast<std::size_t>(idx[d]);
          }
          ASSERT_DOUBLE_EQ(dst[d_off], src[s_off]);
        }
      }
    }
  }
}

std::vector<std::array<int, 4>> all_rank4_perms() {
  std::array<int, 4> p = {0, 1, 2, 3};
  std::vector<std::array<int, 4>> out;
  do {
    out.push_back(p);
  } while (std::next_permutation(p.begin(), p.end()));
  return out;
}

INSTANTIATE_TEST_SUITE_P(All24, Rank4Perms,
                         ::testing::ValuesIn(all_rank4_perms()));

// Extents beyond the 16x16 cache tile (and not multiples of it) exercise
// the tiled-transpose path's interior tiles and ragged edges.
TEST(PermuteTest, TiledPathLargeExtents) {
  const std::vector<int> dims = {19, 3, 33};
  const std::vector<int> perm = {2, 1, 0};  // src fastest axis moves first
  const auto src = random_matrix(19 * 3 * 33, 21);
  std::vector<double> dst(src.size());
  permute(src.data(), dims, perm, dst.data());
  std::vector<double> acc(src.size(), 1.0);
  permute_acc(src.data(), dims, perm, acc.data());
  for (int i = 0; i < 19; ++i) {
    for (int j = 0; j < 3; ++j) {
      for (int k = 0; k < 33; ++k) {
        const std::size_t s = static_cast<std::size_t>((i * 3 + j) * 33 + k);
        const std::size_t d = static_cast<std::size_t>((k * 3 + j) * 19 + i);
        ASSERT_DOUBLE_EQ(dst[d], src[s]);
        ASSERT_DOUBLE_EQ(acc[d], 1.0 + src[s]);
      }
    }
  }
}

TEST(PermuteTest, IsPermutationValidation) {
  EXPECT_TRUE(is_permutation(std::vector<int>{0, 1, 2}));
  EXPECT_TRUE(is_permutation(std::vector<int>{2, 0, 1}));
  EXPECT_FALSE(is_permutation(std::vector<int>{0, 0, 1}));
  EXPECT_FALSE(is_permutation(std::vector<int>{0, 1, 3}));
  EXPECT_FALSE(is_permutation(std::vector<int>{-1, 0, 1}));
}

TEST(PermuteTest, Rank1IsCopy) {
  const std::vector<int> dims = {7};
  const auto src = random_matrix(7, 13);
  std::vector<double> dst(7);
  permute(src.data(), dims, std::vector<int>{0}, dst.data());
  EXPECT_EQ(dst, src);
}

TEST(PermuteTest, Rank6Reverse) {
  const std::vector<int> dims = {2, 2, 2, 2, 2, 2};
  const auto src = random_matrix(64, 17);
  std::vector<double> dst(64), back(64);
  const std::vector<int> reverse = {5, 4, 3, 2, 1, 0};
  permute(src.data(), dims, reverse, dst.data());
  permute(dst.data(), dims, reverse, back.data());
  EXPECT_EQ(back, src);  // reversal is an involution for equal extents
}

// ---------------------------------------------------------------------
// Element-wise kernels.

TEST(ElementwiseTest, FillScalShift) {
  std::vector<double> x(5);
  fill(x, 3.0);
  EXPECT_EQ(x, (std::vector<double>(5, 3.0)));
  scal(x, 2.0);
  EXPECT_EQ(x, (std::vector<double>(5, 6.0)));
  shift(x, -1.0);
  EXPECT_EQ(x, (std::vector<double>(5, 5.0)));
}

TEST(ElementwiseTest, AxpyAndCopy) {
  std::vector<double> x = {1, 2, 3};
  std::vector<double> y = {10, 20, 30};
  axpy(2.0, x, y);
  EXPECT_EQ(y, (std::vector<double>{12, 24, 36}));
  copy(x, y);
  EXPECT_EQ(y, x);
}

TEST(ElementwiseTest, AddSubHadamard) {
  const std::vector<double> x = {1, 2, 3};
  const std::vector<double> y = {4, 5, 6};
  std::vector<double> z(3);
  add(x, y, z);
  EXPECT_EQ(z, (std::vector<double>{5, 7, 9}));
  sub(x, y, z);
  EXPECT_EQ(z, (std::vector<double>{-3, -3, -3}));
  hadamard(x, y, z);
  EXPECT_EQ(z, (std::vector<double>{4, 10, 18}));
}

TEST(ElementwiseTest, Reductions) {
  const std::vector<double> x = {3, -4, 0};
  EXPECT_DOUBLE_EQ(dot(x, x), 25.0);
  EXPECT_DOUBLE_EQ(asum(x), 7.0);
  EXPECT_DOUBLE_EQ(nrm2(x), 5.0);
  EXPECT_DOUBLE_EQ(max_abs(x), 4.0);
}

TEST(ElementwiseTest, SizeMismatchThrows) {
  std::vector<double> x(3), y(4);
  EXPECT_THROW(copy(x, y), sia::InternalError);
  EXPECT_THROW(axpy(1.0, x, y), sia::InternalError);
  EXPECT_THROW(dot(x, y), sia::InternalError);
}

}  // namespace
}  // namespace sia::blas
