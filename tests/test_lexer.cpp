// Unit tests for the SIAL lexer.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sial/lexer.hpp"

namespace sia::sial {
namespace {

std::vector<Token> lex(const std::string& source) {
  return Lexer(source).tokenize();
}

TEST(LexerTest, EmptyInputYieldsEof) {
  const auto tokens = lex("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kEof);
}

TEST(LexerTest, KeywordsAreCaseInsensitive) {
  const auto tokens = lex("PARDO Pardo pardo");
  EXPECT_TRUE(tokens[0].is_keyword("pardo"));
  EXPECT_TRUE(tokens[1].is_keyword("pardo"));
  EXPECT_TRUE(tokens[2].is_keyword("pardo"));
}

TEST(LexerTest, IdentifiersKeepCase) {
  const auto tokens = lex("Tmax t_1");
  EXPECT_EQ(tokens[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(tokens[0].text, "Tmax");
  EXPECT_EQ(tokens[1].text, "t_1");
}

TEST(LexerTest, IntegerAndFloatLiterals) {
  const auto tokens = lex("42 3.5 1e3 2.5e-2 7.");
  EXPECT_EQ(tokens[0].kind, TokenKind::kInteger);
  EXPECT_EQ(tokens[0].int_value, 42);
  EXPECT_EQ(tokens[1].kind, TokenKind::kFloat);
  EXPECT_DOUBLE_EQ(tokens[1].float_value, 3.5);
  EXPECT_EQ(tokens[2].kind, TokenKind::kFloat);
  EXPECT_DOUBLE_EQ(tokens[2].float_value, 1000.0);
  EXPECT_DOUBLE_EQ(tokens[3].float_value, 0.025);
  EXPECT_EQ(tokens[4].kind, TokenKind::kFloat);
}

TEST(LexerTest, CompoundOperators) {
  const auto tokens = lex("+= -= *= == != <= >= = < >");
  EXPECT_EQ(tokens[0].kind, TokenKind::kPlusAssign);
  EXPECT_EQ(tokens[1].kind, TokenKind::kMinusAssign);
  EXPECT_EQ(tokens[2].kind, TokenKind::kStarAssign);
  EXPECT_EQ(tokens[3].kind, TokenKind::kEqEq);
  EXPECT_EQ(tokens[4].kind, TokenKind::kNotEq);
  EXPECT_EQ(tokens[5].kind, TokenKind::kLessEq);
  EXPECT_EQ(tokens[6].kind, TokenKind::kGreaterEq);
  EXPECT_EQ(tokens[7].kind, TokenKind::kAssign);
  EXPECT_EQ(tokens[8].kind, TokenKind::kLess);
  EXPECT_EQ(tokens[9].kind, TokenKind::kGreater);
}

TEST(LexerTest, CommentsRunToEndOfLine) {
  const auto tokens = lex("a # comment with pardo keywords\nb");
  ASSERT_GE(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[1].kind, TokenKind::kNewline);
  EXPECT_EQ(tokens[2].text, "b");
}

TEST(LexerTest, BlankLinesCollapseToOneNewline) {
  const auto tokens = lex("a\n\n\n  \n# only comment\n\nb");
  int newlines = 0;
  for (const Token& token : tokens) {
    if (token.kind == TokenKind::kNewline) ++newlines;
  }
  EXPECT_EQ(newlines, 2);  // after a, after b
}

TEST(LexerTest, StringLiterals) {
  const auto tokens = lex("println \"hello world\"");
  EXPECT_EQ(tokens[1].kind, TokenKind::kString);
  EXPECT_EQ(tokens[1].text, "hello world");
}

TEST(LexerTest, UnterminatedStringThrows) {
  EXPECT_THROW(lex("\"oops"), CompileError);
  EXPECT_THROW(lex("\"oops\nmore\""), CompileError);
}

TEST(LexerTest, UnexpectedCharacterThrows) {
  EXPECT_THROW(lex("a $ b"), CompileError);
  EXPECT_THROW(lex("a ! b"), CompileError);  // lone '!' is invalid
}

TEST(LexerTest, LineNumbersAreAccurate) {
  const auto tokens = lex("a\nbb\n\ncc");
  EXPECT_EQ(tokens[0].line, 1);  // a
  EXPECT_EQ(tokens[2].line, 2);  // bb
  EXPECT_EQ(tokens[4].line, 4);  // cc
}

TEST(LexerTest, ReservedWordList) {
  EXPECT_TRUE(is_reserved_word("pardo"));
  EXPECT_TRUE(is_reserved_word("served"));
  EXPECT_TRUE(is_reserved_word("sip_barrier"));
  EXPECT_FALSE(is_reserved_word("pardoo"));
  EXPECT_FALSE(is_reserved_word("x"));
}

TEST(LexerTest, PunctuationInBlockRef) {
  const auto tokens = lex("t(i,j)");
  EXPECT_EQ(tokens[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(tokens[1].kind, TokenKind::kLParen);
  EXPECT_EQ(tokens[2].kind, TokenKind::kIdentifier);
  EXPECT_EQ(tokens[3].kind, TokenKind::kComma);
  EXPECT_EQ(tokens[4].kind, TokenKind::kIdentifier);
  EXPECT_EQ(tokens[5].kind, TokenKind::kRParen);
}

TEST(LexerTest, FinalNewlineSynthesized) {
  const auto tokens = lex("abc");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[1].kind, TokenKind::kNewline);
  EXPECT_EQ(tokens[2].kind, TokenKind::kEof);
}

}  // namespace
}  // namespace sia::sial
