// Unit tests for the I/O server internals: the slotted DiskStore and the
// write-behind queue (paper §V-B: blocks "lazily written to disk", all
// server operations non-blocking).
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <thread>

#include "common/error.hpp"
#include "sip/io_server.hpp"

namespace sia::sip {
namespace {

class DiskStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("sia_disk_test_" + std::to_string(::getpid())))
               .string();
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string dir_;
};

TEST_F(DiskStoreTest, WriteReadRoundTrip) {
  DiskStore store(dir_, "arr", /*slot_doubles=*/8, /*num_blocks=*/10);
  const std::vector<double> data = {1, 2, 3, 4, 5};
  EXPECT_FALSE(store.has(3));
  store.write(3, data.data(), data.size());
  EXPECT_TRUE(store.has(3));
  std::vector<double> back(5, 0.0);
  store.read(3, back.data(), back.size());
  EXPECT_EQ(back, data);
  EXPECT_EQ(store.blocks_written(), 1);
}

TEST_F(DiskStoreTest, SlotsAreIndependent) {
  DiskStore store(dir_, "arr", 4, 5);
  const std::vector<double> a = {1, 1, 1, 1};
  const std::vector<double> b = {2, 2, 2, 2};
  store.write(0, a.data(), 4);
  store.write(4, b.data(), 4);
  std::vector<double> back(4);
  store.read(0, back.data(), 4);
  EXPECT_EQ(back, a);
  store.read(4, back.data(), 4);
  EXPECT_EQ(back, b);
  EXPECT_FALSE(store.has(2));
}

TEST_F(DiskStoreTest, OverwriteReplaces) {
  DiskStore store(dir_, "arr", 4, 2);
  const std::vector<double> a = {1, 2, 3, 4};
  const std::vector<double> b = {9, 8, 7, 6};
  store.write(1, a.data(), 4);
  store.write(1, b.data(), 4);
  std::vector<double> back(4);
  store.read(1, back.data(), 4);
  EXPECT_EQ(back, b);
}

TEST_F(DiskStoreTest, ReadOfAbsentBlockThrows) {
  DiskStore store(dir_, "arr", 4, 4);
  std::vector<double> buf(4);
  EXPECT_THROW(store.read(2, buf.data(), 4), RuntimeError);
}

TEST_F(DiskStoreTest, OversizedBlockRejected) {
  DiskStore store(dir_, "arr", 4, 4);
  std::vector<double> big(5, 1.0);
  EXPECT_THROW(store.write(0, big.data(), 5), InternalError);
}

TEST_F(DiskStoreTest, PresenceMapPersistsAcrossReopen) {
  {
    DiskStore store(dir_, "arr", 4, 6);
    const std::vector<double> a = {5, 5, 5, 5};
    store.write(2, a.data(), 4);
  }
  DiskStore reopened(dir_, "arr", 4, 6);
  EXPECT_TRUE(reopened.has(2));
  EXPECT_FALSE(reopened.has(0));
  std::vector<double> back(4);
  reopened.read(2, back.data(), 4);
  EXPECT_EQ(back, (std::vector<double>(4, 5.0)));
}

TEST_F(DiskStoreTest, SeparateArraysSeparateFiles) {
  DiskStore a(dir_, "a", 4, 4);
  DiskStore b(dir_, "b", 4, 4);
  const std::vector<double> data = {1, 2, 3, 4};
  a.write(0, data.data(), 4);
  EXPECT_TRUE(a.has(0));
  EXPECT_FALSE(b.has(0));
}

// ---------------------------------------------------------------------
// WriteBehind.

BlockPtr block_of(double value, std::size_t count = 4) {
  auto block = std::make_shared<Block>(
      BlockShape(std::vector<int>{static_cast<int>(count)}));
  for (auto& v : block->data()) v = value;
  return block;
}

TEST_F(DiskStoreTest, WriteBehindDrainsToDisk) {
  DiskStore store(dir_, "wb", 4, 8);
  WriteBehind writer;
  writer.enqueue(&store, 0, 1, block_of(3.0));
  writer.enqueue(&store, 0, 2, block_of(4.0));
  writer.drain();
  EXPECT_EQ(writer.writes(), 2);
  EXPECT_TRUE(store.has(1));
  EXPECT_TRUE(store.has(2));
  std::vector<double> back(4);
  store.read(2, back.data(), 4);
  EXPECT_EQ(back, (std::vector<double>(4, 4.0)));
}

TEST_F(DiskStoreTest, WriteBehindLookupSeesQueuedBlock) {
  DiskStore store(dir_, "wb", 4, 8);
  WriteBehind writer;
  BlockPtr block = block_of(7.0);
  writer.enqueue(&store, 0, 5, block);
  // Immediately visible via lookup whether or not written yet.
  BlockPtr seen = writer.lookup(0, 5);
  if (seen) {
    EXPECT_EQ(seen->data()[0], 7.0);
  }
  writer.drain();
  // After the write completes the queue entry is gone, disk has it.
  EXPECT_EQ(writer.lookup(0, 5), nullptr);
  EXPECT_TRUE(store.has(5));
}

TEST_F(DiskStoreTest, WriteBehindNewerVersionWins) {
  DiskStore store(dir_, "wb", 4, 8);
  WriteBehind writer;
  writer.enqueue(&store, 0, 1, block_of(1.0));
  writer.enqueue(&store, 0, 1, block_of(2.0));
  writer.drain();
  std::vector<double> back(4);
  store.read(1, back.data(), 4);
  EXPECT_EQ(back, (std::vector<double>(4, 2.0)));
}

TEST_F(DiskStoreTest, WriteBehindDrainOnEmptyQueueReturns) {
  WriteBehind writer;
  writer.drain();  // must not hang
  EXPECT_EQ(writer.writes(), 0);
}

TEST_F(DiskStoreTest, WriteBehindManyBlocks) {
  DiskStore store(dir_, "wb", 4, 128);
  WriteBehind writer;
  for (int i = 0; i < 128; ++i) {
    writer.enqueue(&store, 0, i, block_of(static_cast<double>(i)));
  }
  writer.drain();
  EXPECT_EQ(writer.writes(), 128);
  std::vector<double> back(4);
  store.read(100, back.data(), 4);
  EXPECT_EQ(back[0], 100.0);
}

}  // namespace
}  // namespace sia::sip
