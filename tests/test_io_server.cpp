// Unit tests for the I/O server internals: the slotted DiskStore with
// deferred presence-map flushing, the batching write-behind lanes, the
// priority disk pool, and the end-to-end request pipeline (paper §V-B:
// blocks "lazily written to disk", all server operations non-blocking).
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <mutex>
#include <thread>

#include "block/block_pool.hpp"
#include "chem/integrals.hpp"
#include "chem/programs.hpp"
#include "common/error.hpp"
#include "msg/tags.hpp"
#include "sial/compiler.hpp"
#include "sip/io_server.hpp"
#include "sip/launch.hpp"
#include "sip/served_array.hpp"

namespace sia::sip {
namespace {

class DiskStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("sia_disk_test_" + std::to_string(::getpid())))
               .string();
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string dir_;
};

TEST_F(DiskStoreTest, WriteReadRoundTrip) {
  DiskStore store(dir_, "arr", /*slot_doubles=*/8, /*num_blocks=*/10);
  const std::vector<double> data = {1, 2, 3, 4, 5};
  EXPECT_FALSE(store.has(3));
  store.write(3, data.data(), data.size());
  EXPECT_TRUE(store.has(3));
  std::vector<double> back(5, 0.0);
  store.read(3, back.data(), back.size());
  EXPECT_EQ(back, data);
  EXPECT_EQ(store.blocks_written(), 1);
}

TEST_F(DiskStoreTest, SlotsAreIndependent) {
  DiskStore store(dir_, "arr", 4, 5);
  const std::vector<double> a = {1, 1, 1, 1};
  const std::vector<double> b = {2, 2, 2, 2};
  store.write(0, a.data(), 4);
  store.write(4, b.data(), 4);
  std::vector<double> back(4);
  store.read(0, back.data(), 4);
  EXPECT_EQ(back, a);
  store.read(4, back.data(), 4);
  EXPECT_EQ(back, b);
  EXPECT_FALSE(store.has(2));
}

TEST_F(DiskStoreTest, OverwriteReplaces) {
  DiskStore store(dir_, "arr", 4, 2);
  const std::vector<double> a = {1, 2, 3, 4};
  const std::vector<double> b = {9, 8, 7, 6};
  store.write(1, a.data(), 4);
  store.write(1, b.data(), 4);
  std::vector<double> back(4);
  store.read(1, back.data(), 4);
  EXPECT_EQ(back, b);
}

TEST_F(DiskStoreTest, ReadOfAbsentBlockThrows) {
  DiskStore store(dir_, "arr", 4, 4);
  std::vector<double> buf(4);
  EXPECT_THROW(store.read(2, buf.data(), 4), RuntimeError);
}

TEST_F(DiskStoreTest, OversizedBlockRejected) {
  DiskStore store(dir_, "arr", 4, 4);
  std::vector<double> big(5, 1.0);
  EXPECT_THROW(store.write(0, big.data(), 5), InternalError);
}

TEST_F(DiskStoreTest, PresenceMapPersistsAcrossReopen) {
  {
    DiskStore store(dir_, "arr", 4, 6);
    const std::vector<double> a = {5, 5, 5, 5};
    store.write(2, a.data(), 4);
  }
  DiskStore reopened(dir_, "arr", 4, 6);
  EXPECT_TRUE(reopened.has(2));
  EXPECT_FALSE(reopened.has(0));
  std::vector<double> back(4);
  reopened.read(2, back.data(), 4);
  EXPECT_EQ(back, (std::vector<double>(4, 5.0)));
}

TEST_F(DiskStoreTest, SeparateArraysSeparateFiles) {
  DiskStore a(dir_, "a", 4, 4);
  DiskStore b(dir_, "b", 4, 4);
  const std::vector<double> data = {1, 2, 3, 4};
  a.write(0, data.data(), 4);
  EXPECT_TRUE(a.has(0));
  EXPECT_FALSE(b.has(0));
}

TEST_F(DiskStoreTest, DeferredMapFlushPersistsAcrossReopen) {
  // Crash-consistency of the batched presence-map path: many deferred
  // writes, one map pwrite, then reopen against the same scratch dir and
  // check that both the presence map and the block contents survived.
  {
    DiskStore store(dir_, "arr", 4, 16);
    std::vector<double> v(4);
    for (int i = 0; i < 10; ++i) {
      std::fill(v.begin(), v.end(), static_cast<double>(i));
      store.write_deferred(i, v.data(), 4);
    }
    EXPECT_TRUE(store.has(7));  // visible in memory before any flush
    store.flush_map();
    EXPECT_EQ(store.map_flushes(), 1);  // one pwrite covers all ten blocks
  }
  DiskStore reopened(dir_, "arr", 4, 16);
  std::vector<double> back(4);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(reopened.has(i)) << "block " << i;
    reopened.read(i, back.data(), 4);
    EXPECT_EQ(back, (std::vector<double>(4, static_cast<double>(i))));
  }
  EXPECT_FALSE(reopened.has(12));
}

TEST_F(DiskStoreTest, DestructorFlushesDeferredMap) {
  {
    DiskStore store(dir_, "arr", 4, 8);
    const std::vector<double> v = {6, 6, 6, 6};
    store.write_deferred(3, v.data(), 4);
    // No explicit flush_map: a clean shutdown must not lose presence.
  }
  DiskStore reopened(dir_, "arr", 4, 8);
  EXPECT_TRUE(reopened.has(3));
  std::vector<double> back(4);
  reopened.read(3, back.data(), 4);
  EXPECT_EQ(back, (std::vector<double>(4, 6.0)));
}

TEST_F(DiskStoreTest, ColdIoRoundTrip) {
  // cold_io adds fdatasync + fadvise on the same data path; semantics
  // must be unchanged.
  DiskStore store(dir_, "arr", 4, 8, /*cold_io=*/true);
  const std::vector<double> v = {1, 2, 3, 4};
  store.write(2, v.data(), 4);
  store.after_batch();
  std::vector<double> back(4);
  store.read(2, back.data(), 4);
  EXPECT_EQ(back, v);
}

TEST_F(DiskStoreTest, EraseAllClearsPresenceOnDisk) {
  {
    DiskStore store(dir_, "arr", 4, 8);
    const std::vector<double> v = {1, 1, 1, 1};
    store.write(1, v.data(), 4);
    store.erase_all();
    EXPECT_FALSE(store.has(1));
  }
  DiskStore reopened(dir_, "arr", 4, 8);
  EXPECT_FALSE(reopened.has(1));
}

// ---------------------------------------------------------------------
// WriteBehind.

BlockPtr block_of(double value, std::size_t count = 4) {
  auto block = std::make_shared<Block>(
      BlockShape(std::vector<int>{static_cast<int>(count)}));
  for (auto& v : block->data()) v = value;
  return block;
}

TEST_F(DiskStoreTest, WriteBehindDrainsToDisk) {
  DiskStore store(dir_, "wb", 4, 8);
  WriteBehind writer;
  writer.enqueue(&store, 0, 1, block_of(3.0));
  writer.enqueue(&store, 0, 2, block_of(4.0));
  writer.drain();
  EXPECT_EQ(writer.writes(), 2);
  EXPECT_TRUE(store.has(1));
  EXPECT_TRUE(store.has(2));
  std::vector<double> back(4);
  store.read(2, back.data(), 4);
  EXPECT_EQ(back, (std::vector<double>(4, 4.0)));
}

TEST_F(DiskStoreTest, WriteBehindLookupSeesQueuedBlock) {
  DiskStore store(dir_, "wb", 4, 8);
  WriteBehind writer;
  BlockPtr block = block_of(7.0);
  writer.enqueue(&store, 0, 5, block);
  // Immediately visible via lookup whether or not written yet.
  BlockPtr seen = writer.lookup(0, 5);
  if (seen) {
    EXPECT_EQ(seen->data()[0], 7.0);
  }
  writer.drain();
  // After the write completes the queue entry is gone, disk has it.
  EXPECT_EQ(writer.lookup(0, 5), nullptr);
  EXPECT_TRUE(store.has(5));
}

TEST_F(DiskStoreTest, WriteBehindNewerVersionWins) {
  DiskStore store(dir_, "wb", 4, 8);
  WriteBehind writer;
  writer.enqueue(&store, 0, 1, block_of(1.0));
  writer.enqueue(&store, 0, 1, block_of(2.0));
  writer.drain();
  std::vector<double> back(4);
  store.read(1, back.data(), 4);
  EXPECT_EQ(back, (std::vector<double>(4, 2.0)));
}

TEST_F(DiskStoreTest, WriteBehindDrainOnEmptyQueueReturns) {
  WriteBehind writer;
  writer.drain();  // must not hang
  EXPECT_EQ(writer.writes(), 0);
}

TEST_F(DiskStoreTest, WriteBehindManyBlocks) {
  DiskStore store(dir_, "wb", 4, 128);
  WriteBehind writer;
  for (int i = 0; i < 128; ++i) {
    writer.enqueue(&store, 0, i, block_of(static_cast<double>(i)));
  }
  writer.drain();
  EXPECT_EQ(writer.writes(), 128);
  std::vector<double> back(4);
  store.read(100, back.data(), 4);
  EXPECT_EQ(back[0], 100.0);
}

TEST_F(DiskStoreTest, WriteBehindBatchesWritesOfOneArray) {
  // pause() lets the whole backlog accumulate, so the lanes must retire
  // it in large per-array batches — far fewer batches (and map flushes)
  // than blocks.
  DiskStore store(dir_, "wb", 4, 64);
  WriteBehind writer(/*lanes=*/2, /*batched=*/true);
  writer.pause();
  for (int i = 0; i < 32; ++i) {
    writer.enqueue(&store, 0, i, block_of(static_cast<double>(i)));
  }
  writer.resume();
  writer.drain();
  EXPECT_EQ(writer.writes(), 32);
  EXPECT_LE(writer.batches(), 4);
  EXPECT_LE(store.map_flushes(), writer.batches());
  std::vector<double> back(4);
  store.read(31, back.data(), 4);
  EXPECT_EQ(back[0], 31.0);
}

TEST_F(DiskStoreTest, LegacyWriterRetiresOneBlockPerBatch) {
  // batched=false reproduces the pre-pipeline policy: one block and one
  // presence-map pwrite per write (the serial baseline of BENCH_io.json).
  DiskStore store(dir_, "wb", 4, 16);
  WriteBehind writer(/*lanes=*/1, /*batched=*/false);
  writer.pause();
  for (int i = 0; i < 8; ++i) {
    writer.enqueue(&store, 0, i, block_of(static_cast<double>(i)));
  }
  writer.resume();
  writer.drain();
  EXPECT_EQ(writer.writes(), 8);
  EXPECT_EQ(writer.batches(), 8);
  EXPECT_EQ(store.map_flushes(), 8);
}

TEST_F(DiskStoreTest, WriteBehindSurfacesWriteErrorsInsteadOfTerminating) {
  // A disk failure on a lane thread (here: a block exceeding its slot,
  // standing in for ENOSPC/short writes) must not escape the thread body
  // — that would std::terminate the process. It is reported through the
  // error handler and rethrown from drain().
  DiskStore store(dir_, "wb", 4, 8);
  std::string reported;
  WriteBehind writer(/*lanes=*/1, /*batched=*/true,
                     [&](const std::string& error) { reported = error; });
  writer.enqueue(&store, 0, 1, block_of(9.0, /*count=*/8));
  EXPECT_THROW(writer.drain(), RuntimeError);
  EXPECT_FALSE(reported.empty());
  EXPECT_FALSE(store.has(1));
}

TEST_F(DiskStoreTest, CancelArrayDropsQueuedWrites) {
  // Regression for the kServedDelete bug: deleting an array must cancel
  // its queued write-behind entries, or a late write resurrects deleted
  // blocks on disk.
  DiskStore a(dir_, "a", 4, 8);
  DiskStore b(dir_, "b", 4, 8);
  WriteBehind writer;
  writer.pause();
  writer.enqueue(&a, 1, 0, block_of(1.0));
  writer.enqueue(&a, 1, 3, block_of(1.5));
  writer.enqueue(&b, 2, 0, block_of(2.0));
  writer.cancel_array(1);
  EXPECT_EQ(writer.lookup(1, 0), nullptr);
  EXPECT_EQ(writer.lookup(1, 3), nullptr);
  writer.resume();
  writer.drain();
  EXPECT_FALSE(a.has(0));  // deleted array was not resurrected on disk
  EXPECT_FALSE(a.has(3));
  EXPECT_TRUE(b.has(0));  // unrelated array unaffected
}

// ---------------------------------------------------------------------
// DiskPool priority.

TEST(DiskPoolTest, DemandRunsBeforeReadAhead) {
  DiskPool pool(1);
  std::mutex mutex;
  std::condition_variable cv;
  bool release = false;
  std::vector<int> order;
  // Occupy the single thread, then queue a read-ahead job followed by a
  // demand job: the demand job must run first once the thread frees up.
  pool.submit({0, 0},
              [&] {
                std::unique_lock<std::mutex> lock(mutex);
                cv.wait(lock, [&] { return release; });
              },
              /*low_priority=*/false);
  pool.submit({0, 1},
              [&] {
                std::lock_guard<std::mutex> lock(mutex);
                order.push_back(1);
              },
              /*low_priority=*/true);
  pool.submit({0, 2},
              [&] {
                std::lock_guard<std::mutex> lock(mutex);
                order.push_back(2);
              },
              /*low_priority=*/false);
  {
    std::lock_guard<std::mutex> lock(mutex);
    release = true;
  }
  cv.notify_all();
  pool.drain();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 2);
  EXPECT_EQ(order[1], 1);
}

TEST(DiskPoolTest, PromoteUpgradesQueuedReadAhead) {
  DiskPool pool(1);
  std::mutex mutex;
  std::condition_variable cv;
  bool release = false;
  std::vector<int> order;
  pool.submit({0, 0},
              [&] {
                std::unique_lock<std::mutex> lock(mutex);
                cv.wait(lock, [&] { return release; });
              },
              /*low_priority=*/false);
  pool.submit({0, 1},
              [&] {
                std::lock_guard<std::mutex> lock(mutex);
                order.push_back(1);
              },
              /*low_priority=*/true);
  pool.submit({0, 2},
              [&] {
                std::lock_guard<std::mutex> lock(mutex);
                order.push_back(2);
              },
              /*low_priority=*/true);
  // A demand request coalesced onto the queued read-ahead {0,2}: it
  // must now run before the other read-ahead job.
  pool.promote({0, 2});
  {
    std::lock_guard<std::mutex> lock(mutex);
    release = true;
  }
  cv.notify_all();
  pool.drain();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 2);
  EXPECT_EQ(order[1], 1);
}

// ---------------------------------------------------------------------
// End-to-end pipeline: in-flight read coalescing and threaded stress
// (this suite carries the `tsan` label; see tests/CMakeLists.txt).

TEST(ServedPipelineTest, DuplicateColdRequestsCoalesceToOneRead) {
  // Four workers request the same never-cached block of a computed
  // served array whose generator is deliberately slow: the first demand
  // request starts the one generation, the other three must coalesce
  // onto the in-flight entry and share the reply fan-out.
  ServerComputeRegistry::global().register_generator(
      "slow_unit_fill", [](Block& block, std::span<const long>) {
        std::this_thread::sleep_for(std::chrono::milliseconds(150));
        for (double& v : block.data()) v = 1.0;
      });
  SipConfig config;
  config.workers = 4;
  config.io_servers = 1;
  config.default_segment = 6;
  config.server_disk_threads = 2;
  config.prefetch_depth = 4;
  config.constants = {{"n", 6}};  // one 6-element block
  config.computed_served["V"] = "slow_unit_fill";
  Sip sip(config);
  const RunResult result = sip.run_source(R"(sial test
moindex i = 1, n
served V(i)
temp u(i)
scalar lsum
scalar total
do i
  request V(i)
  u(i) = V(i)
  lsum += u(i) * u(i)
enddo i
total = 0.0
collective total += lsum
endsial
)");
  // Every worker sums the same 6 unit elements.
  EXPECT_DOUBLE_EQ(result.scalar("total"), 4.0 * 6.0);
  EXPECT_EQ(result.profile.served.computed, 1);
  EXPECT_EQ(result.profile.served.reads_coalesced, 3);
}

TEST(ServedPipelineTest, ThreadedStressMatchesSerialBitExact) {
  // io_storm shrunk to test size, threaded pipeline vs the serial
  // engine through an undersized server cache: heavy eviction, disk
  // reads, look-ahead, and shared re-reads — and a bit-identical result.
  const auto run = [](bool pipelined) {
    SipConfig config;
    config.workers = 4;
    config.io_servers = 1;
    config.default_segment = 8;
    config.server_cache_bytes = 8 * 8 * 8 * sizeof(double);  // 8 blocks
    config.server_disk_threads = pipelined ? 4 : 0;
    config.prefetch_depth = pipelined ? 4 : 0;
    config.constants = {{"norb", 96}, {"nsweeps", 2}, {"nshared", 96}};
    Sip sip(config);
    return sip.run_source(chem::io_storm_source());
  };
  chem::register_chem_superinstructions();
  const RunResult threaded = run(true);
  const RunResult serial = run(false);
  EXPECT_DOUBLE_EQ(threaded.scalar("snorm2"), serial.scalar("snorm2"));
  EXPECT_GT(threaded.profile.served.server_lookahead_requests, 0);
  EXPECT_GT(threaded.profile.served.server_disk_reads, 0);
  EXPECT_GT(threaded.profile.served.write_batches, 0);
}

// ---------------------------------------------------------------------
// Lost-update and stale-speculation regressions: a prepare racing with an
// in-flight read of the same block must win on both ends of the protocol.

// Shared fixture bits: a one-block served array program and a fabric of
// {master=0, worker=1, server=2}.
struct ServedProtocolHarness {
  explicit ServedProtocolHarness(SipConfig base, const std::string& dir,
                                 const std::string& array_name) {
    config = std::move(base);
    config.workers = 1;
    config.io_servers = 1;
    config.default_segment = 4;
    config.constants = {{"n", 4}};
    program = std::make_unique<sial::ResolvedProgram>(
        sial::compile_sial("sial test\nmoindex i = 1, n\nserved " +
                           array_name + "(i)\nendsial\n"),
        config);
    fabric = std::make_unique<msg::Fabric>(3);
    shared.program = program.get();
    shared.fabric = fabric.get();
    shared.config = config;
    shared.scratch_dir = dir;
    for (std::size_t i = 0; i < program->arrays().size(); ++i) {
      if (program->arrays()[i].name == array_name) {
        array_id = static_cast<int>(i);
      }
    }
    id = BlockId(array_id, std::vector<int>{1});
    linear = id.linearize(program->array(array_id).num_segments);
  }

  SipConfig config;
  std::unique_ptr<sial::ResolvedProgram> program;
  std::unique_ptr<msg::Fabric> fabric;
  SipShared shared;
  int array_id = -1;
  BlockId id;
  std::int64_t linear = 0;
};

TEST_F(DiskStoreTest, PrepareDuringInflightReadIsNotLost) {
  // A speculative read of block B is in flight (a deliberately slow
  // generation) when a prepare of B lands. The prepared dirty block must
  // survive: the stale completion may neither clobber it in the cache
  // (losing the dirty flag and thus the write at the barrier) nor feed
  // later demand reads.
  ServerComputeRegistry::global().register_generator(
      "slow_seven_fill", [](Block& block, std::span<const long>) {
        std::this_thread::sleep_for(std::chrono::milliseconds(300));
        for (double& v : block.data()) v = 7.0;
      });
  SipConfig base;
  base.server_disk_threads = 2;
  base.computed_served["V"] = "slow_seven_fill";
  ServedProtocolHarness hx(base, dir_, "V");
  IoServer server(hx.shared, /*my_rank=*/2);
  std::thread server_thread([&] { server.run(); });
  const auto send = [&](msg::Message m) {
    hx.fabric->send(1, 2, std::move(m));
  };

  // Look-ahead request: becomes the slow in-flight generation job.
  {
    msg::Message m;
    m.tag = msg::kServedRequest;
    m.header = {hx.array_id, hx.linear, /*reply_rank=*/1, /*lookahead=*/1};
    send(std::move(m));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // Prepare of the same block while the read is (normally) in flight.
  {
    msg::Message m;
    m.tag = msg::kServedPrepare;
    m.header = {hx.array_id, hx.linear, /*writer=*/1};
    m.block = block_of(5.0);
    send(std::move(m));
  }
  // The speculative reply arrives either way (answered from the fresh
  // prepare, or — if the generation won the race — from its result).
  std::optional<msg::Message> speculative = hx.fabric->recv_for(1, 5000);
  ASSERT_TRUE(speculative.has_value());
  ASSERT_GE(speculative->header.size(), 4u);
  EXPECT_EQ(speculative->header[3], 1);  // tagged as look-ahead reply
  // Barrier: waits out the generation job and flushes dirty blocks.
  {
    msg::Message m;
    m.tag = msg::kServerBarrierEnter;
    m.header = {0};
    send(std::move(m));
  }
  ASSERT_TRUE(hx.fabric->recv_for(0, 5000).has_value());  // master ack
  // Demand read in the next epoch must see the prepared data, from the
  // cache or from disk — not the stale generated block.
  {
    msg::Message m;
    m.tag = msg::kServedRequest;
    m.header = {hx.array_id, hx.linear, /*reply_rank=*/1};
    send(std::move(m));
  }
  std::optional<msg::Message> reply = hx.fabric->recv_for(1, 5000);
  ASSERT_TRUE(reply.has_value());
  ASSERT_NE(reply->block, nullptr);
  for (const double v : reply->block->data()) EXPECT_EQ(v, 5.0);
  {
    msg::Message m;
    m.tag = msg::kShutdown;
    send(std::move(m));
  }
  server_thread.join();
  EXPECT_TRUE(hx.shared.first_error.empty()) << hx.shared.first_error;
}

TEST_F(DiskStoreTest, ClientPrepareInvalidatesPendingLookahead) {
  // prepare-then-request of the same block in one epoch, with a
  // look-ahead already in flight: the request must not be absorbed by
  // the pending speculation (whose reply pre-dates the prepare). The
  // client re-issues a demand request and discards the stale speculative
  // reply — in either arrival order.
  for (const bool stale_reply_first : {true, false}) {
    ServedProtocolHarness hx(SipConfig{}, dir_, "S");
    BlockPool pool;
    ServedArrayClient client(hx.shared, /*my_rank=*/1, pool,
                             /*cache_capacity_doubles=*/1 << 16);

    client.issue_lookahead(hx.id);
    std::optional<msg::Message> la_req = hx.fabric->recv_for(2, 1000);
    ASSERT_TRUE(la_req.has_value());
    EXPECT_EQ(la_req->tag, msg::kServedRequest);
    ASSERT_EQ(la_req->header.size(), 4u);
    EXPECT_EQ(la_req->header[3], 1);

    // The prepare supersedes whatever the speculation will return.
    client.prepare(hx.id, block_of(2.0), /*accumulate=*/false);
    ASSERT_TRUE(hx.fabric->recv_for(2, 1000).has_value());  // prepare msg

    // The demand read is NOT suppressed by the pending look-ahead: a
    // demand request goes out (server-side it promotes the queued job).
    client.issue_request(hx.id);
    std::optional<msg::Message> demand_req = hx.fabric->recv_for(2, 1000);
    ASSERT_TRUE(demand_req.has_value());
    EXPECT_EQ(demand_req->tag, msg::kServedRequest);
    EXPECT_EQ(client.stats().lookahead_promoted, 1);

    // Server's two replies: the stale speculative one (pre-prepare data)
    // and the fresh demand one. Deliver in both orders; the client must
    // end up with the post-prepare data either way.
    msg::Message stale;
    stale.tag = msg::kServedReply;
    stale.header = {hx.array_id, hx.linear, /*miss=*/0, /*lookahead=*/1};
    stale.block = block_of(1.0);
    msg::Message fresh;
    fresh.tag = msg::kServedReply;
    fresh.header = {hx.array_id, hx.linear, /*miss=*/0, /*lookahead=*/0};
    fresh.block = block_of(2.0);
    if (stale_reply_first) {
      client.handle_reply(stale);
      client.handle_reply(fresh);
    } else {
      client.handle_reply(fresh);
      client.handle_reply(stale);
    }
    BlockPtr got = client.try_read(hx.id);
    ASSERT_NE(got, nullptr) << "stale_reply_first=" << stale_reply_first;
    EXPECT_EQ(got->data()[0], 2.0)
        << "demand read missed its own prepare (stale_reply_first="
        << stale_reply_first << ")";
    EXPECT_FALSE(client.pending(hx.id));
  }
}

}  // namespace
}  // namespace sia::sip
