// Unit tests for the bytecode compiler and disassembler.
#include <gtest/gtest.h>

#include <algorithm>

#include "sial/compiler.hpp"
#include "sial/disasm.hpp"

namespace sia::sial {
namespace {

CompiledProgram compile_body(const std::string& body) {
  return compile_sial("sial test\n" + body + "\nendsial\n");
}

int count_op(const CompiledProgram& program, Opcode op) {
  return static_cast<int>(
      std::count_if(program.code.begin(), program.code.end(),
                    [&](const Instruction& i) { return i.op == op; }));
}

int find_op(const CompiledProgram& program, Opcode op, int nth = 0) {
  for (int pc = 0; pc < static_cast<int>(program.code.size()); ++pc) {
    if (program.code[static_cast<std::size_t>(pc)].op == op && nth-- == 0) {
      return pc;
    }
  }
  return -1;
}

TEST(CompilerTest, EmptyProgramIsJustHalt) {
  const CompiledProgram program = compile_body("");
  ASSERT_EQ(program.code.size(), 1u);
  EXPECT_EQ(program.code[0].op, Opcode::kHalt);
}

TEST(CompilerTest, TablesPopulated) {
  const CompiledProgram program = compile_body(R"(
aoindex mu = 1, norb
moindex i = 1, nocc
temp t(mu,i)
scalar x
)");
  EXPECT_EQ(program.indices.size(), 2u);
  EXPECT_EQ(program.arrays.size(), 1u);
  EXPECT_EQ(program.scalars.size(), 1u);
  EXPECT_EQ(program.index_id("mu"), 0);
  EXPECT_EQ(program.array_id("t"), 0);
  EXPECT_EQ(program.scalar_id("x"), 0);
  EXPECT_EQ(program.index_id("zz"), -1);
  // norb and nocc registered as symbolic constants.
  EXPECT_NE(std::find(program.constants.begin(), program.constants.end(),
                      "norb"),
            program.constants.end());
}

TEST(CompilerTest, DoLoopJumpTargetsPaired) {
  const CompiledProgram program = compile_body(R"(
moindex i = 1, nocc
do i
enddo i
)");
  const int start = find_op(program, Opcode::kDoStart);
  const int end = find_op(program, Opcode::kDoEnd);
  ASSERT_GE(start, 0);
  ASSERT_GE(end, 0);
  EXPECT_EQ(program.code[static_cast<std::size_t>(start)].a1, end);
  EXPECT_EQ(program.code[static_cast<std::size_t>(end)].a0, start);
}

TEST(CompilerTest, PardoTableRecordsBounds) {
  const CompiledProgram program = compile_body(R"(
moindex i = 1, nocc
moindex j = 1, nocc
pardo i, j where i < j
endpardo i, j
)");
  ASSERT_EQ(program.pardos.size(), 1u);
  const PardoInfo& pardo = program.pardos[0];
  EXPECT_EQ(pardo.index_ids.size(), 2u);
  EXPECT_EQ(pardo.wheres.size(), 1u);
  EXPECT_TRUE(pardo.wheres[0].rhs_is_index);
  EXPECT_EQ(pardo.start_pc, find_op(program, Opcode::kPardoStart));
  EXPECT_EQ(pardo.end_pc, find_op(program, Opcode::kPardoEnd));
}

TEST(CompilerTest, PardoInRecordsSubOf) {
  const CompiledProgram program = compile_body(R"(
moindex i = 1, nocc
subindex ii of i
do i
  pardo ii in i
  endpardo ii
enddo i
)");
  ASSERT_EQ(program.pardos.size(), 1u);
  EXPECT_EQ(program.pardos[0].sub_of, program.index_id("i"));
  EXPECT_EQ(program.pardos[0].index_ids.front(), program.index_id("ii"));
}

TEST(CompilerTest, IfElseJumpsSkipBranches) {
  const CompiledProgram program = compile_body(R"(
scalar x
if x < 1.0
  x = 2.0
else
  x = 3.0
endif
)");
  const int branch = find_op(program, Opcode::kJumpIfFalse);
  const int jump = find_op(program, Opcode::kJump);
  ASSERT_GE(branch, 0);
  ASSERT_GE(jump, 0);
  // The false target lands after the jump (start of else).
  EXPECT_EQ(program.code[static_cast<std::size_t>(branch)].a0, jump + 1);
  // The jump target lands after the else body.
  EXPECT_GT(program.code[static_cast<std::size_t>(jump)].a0, jump + 1);
}

TEST(CompilerTest, ExitTargetsInnermostDoEnd) {
  const CompiledProgram program = compile_body(R"(
moindex i = 1, nocc
moindex j = 1, nocc
do i
  do j
    exit
  enddo j
enddo i
)");
  const int exit_pc = find_op(program, Opcode::kExitLoop);
  const int inner_end = find_op(program, Opcode::kDoEnd, 0);
  ASSERT_GE(exit_pc, 0);
  EXPECT_EQ(program.code[static_cast<std::size_t>(exit_pc)].a0, inner_end);
}

TEST(CompilerTest, ProcsCompileAfterHaltWithReturn) {
  const CompiledProgram program = compile_body(R"(
scalar x
proc setx
  x = 1.0
endproc
call setx
)");
  const int halt = find_op(program, Opcode::kHalt);
  ASSERT_EQ(program.procs.size(), 1u);
  EXPECT_GT(program.procs[0].entry_pc, halt);
  EXPECT_EQ(count_op(program, Opcode::kReturn), 1);
  const int call = find_op(program, Opcode::kCall);
  EXPECT_EQ(program.code[static_cast<std::size_t>(call)].a0, 0);
}

TEST(CompilerTest, BlockBinaryOperandsInOrder) {
  const CompiledProgram program = compile_body(R"(
moindex i = 1, nocc
moindex j = 1, nocc
moindex k = 1, nocc
temp a(i,k)
temp b(k,j)
temp c(i,j)
do i
do j
do k
  c(i,j) += a(i,k) * b(k,j)
enddo k
enddo j
enddo i
)");
  const int pc = find_op(program, Opcode::kBlockBinary);
  ASSERT_GE(pc, 0);
  const Instruction& instr = program.code[static_cast<std::size_t>(pc)];
  EXPECT_EQ(instr.a0, 1);  // +=
  EXPECT_EQ(instr.a1, static_cast<int>(BinOp::kMul));
  ASSERT_EQ(instr.blocks.size(), 3u);
  EXPECT_EQ(instr.blocks[0].array_id, program.array_id("c"));
  EXPECT_EQ(instr.blocks[1].array_id, program.array_id("a"));
  EXPECT_EQ(instr.blocks[2].array_id, program.array_id("b"));
}

TEST(CompilerTest, ScalarExpressionUsesStackOps) {
  const CompiledProgram program =
      compile_body("scalar x\nx = 1.0 + 2.0 * 3.0\n");
  EXPECT_EQ(count_op(program, Opcode::kPushNumber), 3);
  EXPECT_EQ(count_op(program, Opcode::kMul), 1);
  EXPECT_EQ(count_op(program, Opcode::kAdd), 1);
  EXPECT_EQ(count_op(program, Opcode::kStoreScalar), 1);
}

TEST(CompilerTest, ConstantsCompileToPushConst) {
  const CompiledProgram program = compile_body("scalar x\nx = norb\n");
  const int pc = find_op(program, Opcode::kPushConst);
  ASSERT_GE(pc, 0);
  EXPECT_EQ(program.constants[static_cast<std::size_t>(
                program.code[static_cast<std::size_t>(pc)].a0)],
            "norb");
}

TEST(CompilerTest, ExecuteDeduplicatesNames) {
  const CompiledProgram program = compile_body(R"(
moindex i = 1, nocc
temp t(i)
do i
  execute foo t(i)
  execute foo t(i)
  execute bar t(i)
enddo i
)");
  EXPECT_EQ(program.superinstructions.size(), 2u);
}

TEST(CompilerTest, StringsDeduplicated) {
  const CompiledProgram program = compile_body(
      "println \"a\"\nprintln \"a\"\nprintln \"b\"\n");
  EXPECT_EQ(program.strings.size(), 2u);
}

TEST(CompilerTest, WildcardAllocateEncoded) {
  const CompiledProgram program = compile_body(R"(
moindex i = 1, nocc
moindex j = 1, nocc
local l(i,j)
do j
  allocate l(*,j)
enddo j
)");
  const int pc = find_op(program, Opcode::kAllocate);
  ASSERT_GE(pc, 0);
  const BlockOperand& operand =
      program.code[static_cast<std::size_t>(pc)].blocks[0];
  EXPECT_EQ(operand.index_ids[0], kWildcardIndex);
  EXPECT_EQ(operand.index_ids[1], program.index_id("j"));
}

TEST(DisasmTest, ListsEveryInstruction) {
  const CompiledProgram program = compile_body(R"(
moindex i = 1, nocc
temp t(i)
scalar x
do i
  t(i) = 1.0
  x += t(i) * t(i)
enddo i
print x
)");
  const std::string listing = disassemble(program);
  EXPECT_NE(listing.find("do_start"), std::string::npos);
  EXPECT_NE(listing.find("block_scalar_op"), std::string::npos);
  EXPECT_NE(listing.find("block_dot"), std::string::npos);
  EXPECT_NE(listing.find("t(i)"), std::string::npos);
  EXPECT_NE(listing.find("print_top"), std::string::npos);
  // One line per instruction.
  std::size_t lines = std::count(listing.begin(), listing.end(), '\n');
  EXPECT_GE(lines, program.code.size());
}

TEST(DisasmTest, OpcodeNamesCoverEveryOpcode) {
  // opcode_name must return a real name (not "?") for all opcodes used in
  // a kitchen-sink program.
  const CompiledProgram program = compile_body(R"(
aoindex mu = 1, norb
moindex i = 1, nocc
distributed d(mu,i)
served s(mu,i)
temp t(mu,i)
local l(mu,i)
scalar x
create d
pardo mu, i
  t(mu,i) = 1.0
  put d(mu,i) = t(mu,i)
  prepare s(mu,i) = t(mu,i)
endpardo mu, i
sip_barrier
server_barrier
collective x += x
checkpoint d "ck"
delete d
)");
  for (std::size_t pc = 0; pc < program.code.size(); ++pc) {
    EXPECT_STRNE(opcode_name(program.code[pc].op), "?");
    EXPECT_FALSE(
        disassemble_instruction(program, static_cast<int>(pc)).empty());
  }
}

}  // namespace
}  // namespace sia::sial
