// Tests for the SIAL mid-end (src/sial/opt/): loop-invariant hoisting to
// kPrefetch, redundant-barrier elimination, dead-store elimination,
// contraction reassociation, static access sets, window-safety proofs,
// the source-ranged diagnostics the passes emit, and — the load-bearing
// property — that optimized programs produce bit-identical results on
// the full SIP, serial and threaded, across every chemistry workload.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "chem/integrals.hpp"
#include "chem/programs.hpp"
#include "common/config.hpp"
#include "sial/compiler.hpp"
#include "sial/diag.hpp"
#include "sial/disasm.hpp"
#include "sial/opt/analysis.hpp"
#include "sial/opt/optimizer.hpp"
#include "sip/launch.hpp"

namespace sia {
namespace {

using sial::CompiledProgram;
using sial::Diag;
using sial::Opcode;
using sial::opt::OptResult;

int count_op(const CompiledProgram& program, Opcode op) {
  int count = 0;
  for (const auto& instr : program.code) {
    if (instr.op == op) ++count;
  }
  return count;
}

int find_op(const CompiledProgram& program, Opcode op, int nth = 0) {
  for (int pc = 0; pc < static_cast<int>(program.code.size()); ++pc) {
    if (program.code[static_cast<std::size_t>(pc)].op == op && nth-- == 0) {
      return pc;
    }
  }
  return -1;
}

int count_diags(const std::vector<Diag>& diags, const char* code) {
  int count = 0;
  for (const Diag& diag : diags) {
    if (diag.code == code) ++count;
  }
  return count;
}

const Diag* find_diag(const std::vector<Diag>& diags, const char* code) {
  for (const Diag& diag : diags) {
    if (diag.code == code) return &diag;
  }
  return nullptr;
}

SipConfig small_config() {
  chem::register_chem_superinstructions();
  SipConfig config;
  config.workers = 3;
  config.io_servers = 1;
  config.default_segment = 4;
  config.constants = {{"n", 8}, {"norb", 8}, {"nocc", 4}, {"maxiter", 2}};
  return config;
}

// ---------------------------------------------------------------------
// Satellite: source ranges survive lexer -> parser -> bytecode.

TEST(OptRangesTest, InstructionsCarryColumnAccurateRanges) {
  const CompiledProgram program = sial::compile_sial(
      "sial ranges\n"
      "aoindex a = 1, n\n"
      "aoindex k = 1, n\n"
      "distributed D(a,k)\n"
      "do a\n"
      "  do k\n"
      "    get D(a,k)\n"
      "  enddo k\n"
      "enddo a\n"
      "endsial\n");
  const int get_pc = find_op(program, Opcode::kGet);
  ASSERT_GE(get_pc, 0);
  const sial::SrcRange& range =
      program.code[static_cast<std::size_t>(get_pc)].range;
  EXPECT_EQ(range.line, 7);
  EXPECT_EQ(range.col, 5);  // "get" starts at column 5
  EXPECT_GT(range.end_col, range.col);
  EXPECT_FALSE(program.source.empty());
}

// ---------------------------------------------------------------------
// Pass 1: loop-invariant hoisting.

const char* const kHoistSource = R"(
sial hoist_demo
aoindex a = 1, n
aoindex b = 1, n
aoindex k = 1, n
distributed D(a,b)
temp t(a,b)
temp u(a,b)
scalar s
scalar total
pardo a, b
  execute random_block t(a,b) 3
  put D(a,b) = t(a,b)
endpardo a, b
sip_barrier
s = 0.0
pardo a, b
  do k
    get D(a,b)
    u(a,b) = D(a,b)
    s += u(a,b) * u(a,b)
  enddo k
endpardo a, b
total = 0.0
collective total += s
endsial
)";

TEST(HoistTest, LoopInvariantGetBecomesPrefetch) {
  const CompiledProgram raw = sial::compile_sial(kHoistSource);
  EXPECT_EQ(count_op(raw, Opcode::kPrefetch), 0);
  ASSERT_EQ(count_op(raw, Opcode::kGet), 1);

  const OptResult opt = sial::opt::optimize(raw, 1);
  // The get's block id uses only the pardo's indices, so it is invariant
  // in k: hoisted to one prefetch, the body get nop'd.
  EXPECT_EQ(count_op(opt.program, Opcode::kPrefetch), 1);
  EXPECT_EQ(count_op(opt.program, Opcode::kGet), 0);

  // Placed immediately before the do loop, with the loop's index as the
  // zero-trip guard.
  const int prefetch_pc = find_op(opt.program, Opcode::kPrefetch);
  const int do_pc = find_op(opt.program, Opcode::kDoStart);
  ASSERT_GE(prefetch_pc, 0);
  EXPECT_EQ(do_pc, prefetch_pc + 1);
  const auto& prefetch =
      opt.program.code[static_cast<std::size_t>(prefetch_pc)];
  EXPECT_EQ(prefetch.a0, opt.program.index_id("k"));
  EXPECT_EQ(prefetch.a1, -1);

  // Loop bookkeeping still paired after the pc shift.
  const auto& do_start = opt.program.code[static_cast<std::size_t>(do_pc)];
  EXPECT_EQ(opt.program.code[static_cast<std::size_t>(do_start.a1)].op,
            Opcode::kDoEnd);
  EXPECT_EQ(opt.program.code[static_cast<std::size_t>(do_start.a1)].a0,
            do_pc);

  ASSERT_EQ(count_diags(opt.diagnostics, sial::kDiagLoopInvariantGet), 1);
  const Diag* diag =
      find_diag(opt.diagnostics, sial::kDiagLoopInvariantGet);
  EXPECT_NE(diag->message.find("this get is loop-invariant (hoisted)"),
            std::string::npos);
  ASSERT_EQ(diag->notes.size(), 1u);
  EXPECT_NE(diag->notes[0].message.find("before this loop"),
            std::string::npos);

  const std::string listing = sial::disassemble_annotated(opt.program);
  EXPECT_NE(listing.find("prefetch"), std::string::npos);
  EXPECT_NE(listing.find("hoisted: loop-invariant D(a,b)"),
            std::string::npos);
}

TEST(HoistTest, LoopVaryingAndPutConflictingGetsStay) {
  // comm_storm's sweep gets use the do index k: nothing to hoist.
  const OptResult opt =
      sial::opt::optimize(sial::compile_sial(chem::comm_storm_source()), 2);
  EXPECT_EQ(count_op(opt.program, Opcode::kPrefetch), 0);
  EXPECT_EQ(count_diags(opt.diagnostics, sial::kDiagLoopInvariantGet), 0);
}

TEST(HoistTest, HoistedRunMatchesUnoptimizedBitForBit) {
  SipConfig base = small_config();
  base.opt_level = 0;
  sip::Sip sip0(base);
  const sip::RunResult r0 = sip0.run_source(kHoistSource);

  for (int level : {1, 2}) {
    for (int threads : {0, 2}) {
      SipConfig config = small_config();
      config.opt_level = level;
      config.worker_threads = threads;
      sip::Sip sip(config);
      const sip::RunResult r = sip.run_source(kHoistSource);
      EXPECT_EQ(r.scalar("total"), r0.scalar("total"))
          << "level=" << level << " threads=" << threads;
    }
  }
}

// ---------------------------------------------------------------------
// Pass 2: redundant barrier elimination.

TEST(BarrierTest, BackToBackBarrierEliminated) {
  const OptResult opt = sial::opt::optimize(sial::compile_sial(R"(
sial barriers
aoindex a = 1, n
aoindex b = 1, n
distributed D(a,b)
temp t(a,b)
temp u(a,b)
scalar s
scalar total
pardo a, b
  execute random_block t(a,b) 1
  put D(a,b) = t(a,b)
endpardo a, b
sip_barrier
sip_barrier
s = 0.0
pardo a, b
  get D(a,b)
  u(a,b) = D(a,b)
  s += u(a,b) * u(a,b)
endpardo a, b
total = 0.0
collective total += s
endsial
)"),
                                             1);
  // One of the pair is redundant; the separating one must survive.
  EXPECT_EQ(count_op(opt.program, Opcode::kSipBarrier), 1);
  ASSERT_EQ(count_diags(opt.diagnostics, sial::kDiagRedundantBarrier), 1);
  const Diag* diag =
      find_diag(opt.diagnostics, sial::kDiagRedundantBarrier);
  EXPECT_NE(diag->message.find("this barrier is redundant"),
            std::string::npos);
  ASSERT_EQ(diag->notes.size(), 1u);
  EXPECT_NE(diag->notes[0].message.find("no conflicting access separates"),
            std::string::npos);
}

TEST(BarrierTest, WrongClassBarrierEliminatedRightClassKept) {
  // Only distributed traffic crosses this point, so a server barrier
  // there separates nothing; the sip barrier carries the dependence.
  const OptResult opt = sial::opt::optimize(sial::compile_sial(R"(
sial classes
aoindex a = 1, n
aoindex b = 1, n
distributed D(a,b)
temp t(a,b)
temp u(a,b)
scalar s
pardo a, b
  execute random_block t(a,b) 1
  put D(a,b) = t(a,b)
endpardo a, b
server_barrier
sip_barrier
pardo a, b
  get D(a,b)
  u(a,b) = D(a,b)
  s += u(a,b) * u(a,b)
endpardo a, b
endsial
)"),
                                             1);
  EXPECT_EQ(count_op(opt.program, Opcode::kServerBarrier), 0);
  EXPECT_EQ(count_op(opt.program, Opcode::kSipBarrier), 1);
}

TEST(BarrierTest, NeededBarriersNeverEliminated) {
  // Every barrier in the shipped chemistry programs separates a write
  // phase from a read phase: the pass must keep all of them.
  for (const std::string& source :
       {chem::contraction_demo_source(), chem::ccd_energy_source(),
        chem::comm_storm_source(), chem::mp2_served_source(),
        chem::sparse_fock_source()}) {
    const CompiledProgram raw = sial::compile_sial(source);
    const OptResult opt = sial::opt::optimize(raw, 2);
    EXPECT_EQ(count_op(opt.program, Opcode::kSipBarrier),
              count_op(raw, Opcode::kSipBarrier))
        << opt.program.name;
    EXPECT_EQ(count_op(opt.program, Opcode::kServerBarrier),
              count_op(raw, Opcode::kServerBarrier))
        << opt.program.name;
  }
}

TEST(BarrierTest, ChaosRunAtO2StaysExactlyOnce) {
  // Fault injection under the optimizer: elimination must not have
  // removed a barrier the ack/retry protocol depends on. Compared to
  // tight rounding rather than bit-for-bit: with 3 workers the put +=
  // accumulate order at the owner is timing-dependent even fault-free
  // (see BitIdentityTest), while a lost or double-applied accumulate
  // would move cnorm2 at percent level — far outside the tolerance.
  SipConfig config = small_config();
  config.constants["norb"] = 16;
  config.opt_level = 2;
  sip::Sip clean_sip(config);
  const double baseline =
      clean_sip.run_source(chem::comm_storm_source()).scalar("cnorm2");
  for (int seed : {1, 7}) {
    SipConfig chaotic = config;
    chaotic.retry_timeout_ms = 50;
    chaotic.fault_plan =
        FaultPlan::parse("drop=0.01,dup=0.01,seed=" + std::to_string(seed));
    sip::Sip sip(chaotic);
    EXPECT_NEAR(sip.run_source(chem::comm_storm_source()).scalar("cnorm2"),
                baseline, 1e-10 * std::abs(baseline))
        << "seed " << seed;
  }
}

// ---------------------------------------------------------------------
// Pass 3: dead-store elimination.

TEST(DeadStoreTest, OverwrittenTempStoreEliminated) {
  const OptResult opt = sial::opt::optimize(sial::compile_sial(R"(
sial dse
aoindex a = 1, n
aoindex b = 1, n
temp t(a,b)
temp w(a,b)
temp u(a,b)
scalar s
s = 0.0
pardo a, b
  execute random_block t(a,b) 5
  execute random_block w(a,b) 6
  u(a,b) = t(a,b)
  u(a,b) = w(a,b)
  s += u(a,b) * u(a,b)
endpardo a, b
endsial
)"),
                                             1);
  // The first copy into u is overwritten unread; the second is consumed.
  EXPECT_EQ(count_op(opt.program, Opcode::kBlockCopy), 1);
  ASSERT_EQ(count_diags(opt.diagnostics, sial::kDiagDeadStore), 1);
  const Diag* diag = find_diag(opt.diagnostics, sial::kDiagDeadStore);
  EXPECT_NE(diag->message.find("dead store"), std::string::npos);
  ASSERT_EQ(diag->notes.size(), 1u);
}

TEST(DeadStoreTest, ReadBetweenStoresBlocksElimination) {
  const OptResult opt = sial::opt::optimize(sial::compile_sial(R"(
sial dse_neg
aoindex a = 1, n
aoindex b = 1, n
temp t(a,b)
temp w(a,b)
temp u(a,b)
scalar s
s = 0.0
pardo a, b
  execute random_block t(a,b) 5
  execute random_block w(a,b) 6
  u(a,b) = t(a,b)
  s += u(a,b) * u(a,b)
  u(a,b) = w(a,b)
  s += u(a,b) * u(a,b)
endpardo a, b
endsial
)"),
                                             1);
  EXPECT_EQ(count_op(opt.program, Opcode::kBlockCopy), 2);
  EXPECT_EQ(count_diags(opt.diagnostics, sial::kDiagDeadStore), 0);
}

// ---------------------------------------------------------------------
// Pass 4 (-O2): contraction reassociation.

const char* const kReassocSource = R"(
sial reassoc
moindex i = 1, 32
moindex j = 1, 4
moindex k = 1, 4
moindex l = 1, 4
temp A(i,j)
temp B(j,k)
temp C(k,l)
temp t1(i,k)
temp d(i,l)
scalar s
scalar total
s = 0.0
pardo i, l
  do j
    do k
      execute random_block A(i,j) 1
      execute random_block B(j,k) 2
      execute random_block C(k,l) 3
      t1(i,k) = A(i,j) * B(j,k)
      d(i,l) = t1(i,k) * C(k,l)
      s += d(i,l) * d(i,l)
    enddo k
  enddo j
endpardo i, l
total = 0.0
collective total += s
endsial
)";

TEST(ReassocTest, CheaperOrderRewritesThroughFreshIntermediate) {
  const OptResult opt =
      sial::opt::optimize(sial::compile_sial(kReassocSource), 2);
  ASSERT_EQ(count_diags(opt.diagnostics, sial::kDiagReassociated), 1);
  const Diag* diag = find_diag(opt.diagnostics, sial::kDiagReassociated);
  // (A*B)*C contracts the big index i twice; B*C first touches it once.
  EXPECT_NE(diag->message.find("B(j,k) * C(k,l) is computed first"),
            std::string::npos);
  EXPECT_NE(opt.program.array_id("@reassoc0"), -1);

  // def now computes t2(j,l) = B*C and use consumes A * t2.
  const int def_pc = find_op(opt.program, Opcode::kBlockBinary, 0);
  const int use_pc = find_op(opt.program, Opcode::kBlockBinary, 1);
  ASSERT_GE(def_pc, 0);
  const auto& def = opt.program.code[static_cast<std::size_t>(def_pc)];
  const auto& use = opt.program.code[static_cast<std::size_t>(use_pc)];
  EXPECT_EQ(def.blocks[0].array_id, opt.program.array_id("@reassoc0"));
  EXPECT_EQ(def.blocks[1].array_id, opt.program.array_id("B"));
  EXPECT_EQ(def.blocks[2].array_id, opt.program.array_id("C"));
  EXPECT_EQ(use.blocks[0].array_id, opt.program.array_id("d"));
  EXPECT_EQ(use.blocks[1].array_id, opt.program.array_id("A"));
  EXPECT_EQ(use.blocks[2].array_id, opt.program.array_id("@reassoc0"));
}

TEST(ReassocTest, OnlyFiresAtO2) {
  const OptResult opt =
      sial::opt::optimize(sial::compile_sial(kReassocSource), 1);
  EXPECT_EQ(count_diags(opt.diagnostics, sial::kDiagReassociated), 0);
  EXPECT_EQ(opt.program.array_id("@reassoc0"), -1);
}

TEST(ReassocTest, ReassociatedRunMatchesToRounding) {
  // Reassociation changes the floating-point summation order, so the
  // contract is near-equality, not bit-equality.
  SipConfig base = small_config();
  base.opt_level = 0;
  sip::Sip sip0(base);
  const double expected = sip0.run_source(kReassocSource).scalar("total");

  SipConfig config = small_config();
  config.opt_level = 2;
  sip::Sip sip2(config);
  const double got = sip2.run_source(kReassocSource).scalar("total");
  EXPECT_NEAR(got, expected, 1e-9 * (1.0 + std::abs(expected)));
}

TEST(ReassocTest, NeverFiresOnShippedChemistryPrograms) {
  // The bit-identity matrix below depends on this: -O2 equals -O0
  // exactly because no chemistry program matches the rewrite pattern.
  for (const std::string& source :
       {chem::contraction_demo_source(), chem::mp2_energy_source(),
        chem::ccd_energy_source(), chem::fock_build_source(),
        chem::comm_storm_source(), chem::mp2_served_source(),
        chem::sparse_fock_source(), chem::sparse_mp2_source()}) {
    const OptResult opt =
        sial::opt::optimize(sial::compile_sial(source), 2);
    EXPECT_EQ(count_diags(opt.diagnostics, sial::kDiagReassociated), 0)
        << opt.program.name;
  }
}

// ---------------------------------------------------------------------
// Static access sets, renaming proofs, window safety.

TEST(AccessSetTest, SetsPresentOnlyWhenAnalyzed) {
  const CompiledProgram raw =
      sial::compile_sial(chem::comm_storm_source());
  EXPECT_FALSE(raw.analyzed);
  const OptResult o0 = sial::opt::optimize(raw, 0);
  EXPECT_FALSE(o0.program.analyzed);
  const OptResult o1 = sial::opt::optimize(raw, 1);
  EXPECT_TRUE(o1.program.analyzed);

  // The sweep's `tmp(a,b) = A(a,k) * A(b,k)` reads both gets' blocks and
  // fully overwrites a never-sliced temp: a proven rename.
  const int pc = find_op(o1.program, Opcode::kBlockBinary);
  ASSERT_GE(pc, 0);
  const auto& instr = o1.program.code[static_cast<std::size_t>(pc)];
  ASSERT_EQ(instr.access.size(), 3u);
  EXPECT_FALSE(instr.access[0].write);
  EXPECT_FALSE(instr.access[1].write);
  EXPECT_TRUE(instr.access[2].write);
  EXPECT_TRUE(instr.access[2].full_overwrite);
  EXPECT_TRUE(instr.renames_dst);

  const std::string listing = sial::disassemble_annotated(o1.program);
  EXPECT_NE(listing.find("opt level 1 (analyzed)"), std::string::npos);
  EXPECT_NE(listing.find("R={"), std::string::npos);
  EXPECT_NE(listing.find("renames"), std::string::npos);
}

TEST(WindowSafetyTest, CommStormSweepProvenSafe) {
  const OptResult opt =
      sial::opt::optimize(sial::compile_sial(chem::comm_storm_source()), 1);
  ASSERT_EQ(opt.program.pardos.size(), 3u);
  EXPECT_FALSE(opt.program.pardos[0].window_safe);  // kExecute in body
  EXPECT_TRUE(opt.program.pardos[1].window_safe);   // the sweep
  EXPECT_FALSE(opt.program.pardos[2].window_safe);  // kBlockDot in body
  EXPECT_NE(sial::disassemble_annotated(opt.program).find("window-safe"),
            std::string::npos);
}

TEST(WindowSafetyTest, ReadBeforeWriteTempDefeatsRenaming) {
  const OptResult opt = sial::opt::optimize(sial::compile_sial(R"(
sial w002
aoindex a = 1, n
aoindex b = 1, n
aoindex k = 1, n
distributed A(a,k)
temp acc(a,b)
pardo a, b
  do k
    get A(a,k)
    acc(a,b) += A(a,k) * A(b,k)
  enddo k
endpardo a, b
endsial
)"),
                                             1);
  ASSERT_EQ(opt.program.pardos.size(), 1u);
  EXPECT_FALSE(opt.program.pardos[0].window_safe);
  ASSERT_EQ(count_diags(opt.diagnostics, sial::kDiagTempDefeatsRenaming),
            1);
  const Diag* diag =
      find_diag(opt.diagnostics, sial::kDiagTempDefeatsRenaming);
  EXPECT_NE(diag->message.find("this pardo temp defeats renaming"),
            std::string::npos);
  EXPECT_NE(diag->message.find("'acc'"), std::string::npos);
  ASSERT_EQ(diag->notes.size(), 1u);
}

// ---------------------------------------------------------------------
// Diagnostics rendering.

TEST(DiagRenderTest, CaretSnippetsWithNotes) {
  const std::string source = kHoistSource;
  const OptResult opt =
      sial::opt::optimize(sial::compile_sial(source), 1);
  const std::string out =
      sial::render_diags(opt.diagnostics, source, "hoist.sial");
  EXPECT_NE(out.find("hoist.sial:"), std::string::npos);
  EXPECT_NE(
      out.find("warning: this get is loop-invariant (hoisted) [W003]"),
      std::string::npos);
  EXPECT_NE(out.find("get D(a,b)"), std::string::npos);
  EXPECT_NE(out.find("^~~"), std::string::npos);
  EXPECT_NE(out.find("note: hoisted to a prefetch before this loop"),
            std::string::npos);
}

// ---------------------------------------------------------------------
// The opt-vs-noopt bit-identity matrix over the chemistry programs.

TEST(BitIdentityTest, AllLevelsSerialAndThreadedMatchO0) {
  // Compared on each program's published (post-collective) result
  // scalars: worker-0 partial sums like csum/esum legitimately vary with
  // dynamic chunk assignment even without the optimizer. comm_storm's
  // cnorm2 further depends on the arrival order of concurrent put +=
  // accumulates at the block owner, which varies run to run even at -O0
  // with a fixed config, so it is compared to tight rounding instead of
  // bit for bit.
  struct Case {
    std::string source;
    std::vector<std::string> outputs;
    bool exact;
  };
  const Case programs[] = {
      {chem::ccd_energy_source(), {"energy", "rnorm2"}, true},
      {chem::comm_storm_source(), {"cnorm2"}, false},
      {chem::mp2_served_source(), {"e2", "tnorm2"}, true},
      {chem::sparse_fock_source(), {"fnorm2"}, true},
  };
  for (const auto& [source, outputs, exact] : programs) {
    SipConfig base = small_config();
    base.opt_level = 0;
    sip::Sip sip0(base);
    const sip::RunResult baseline = sip0.run_source(source);

    for (int level : {0, 1, 2}) {
      for (int threads : {0, 2}) {
        if (level == 0 && threads == 0) continue;  // the baseline itself
        SipConfig config = small_config();
        config.opt_level = level;
        config.worker_threads = threads;
        sip::Sip sip(config);
        const sip::RunResult got = sip.run_source(source);
        for (const std::string& scalar : outputs) {
          const double want = baseline.scalar(scalar);
          if (exact) {
            EXPECT_EQ(got.scalar(scalar), want)
                << scalar << " -O" << level << " threads=" << threads;
          } else {
            EXPECT_NEAR(got.scalar(scalar), want, 1e-10 * std::abs(want))
                << scalar << " -O" << level << " threads=" << threads;
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------
// Runtime consumption: hazard-edge split and window-spanning pardos.

TEST(ExecutorStatsTest, HazardEdgesSplitByKind) {
  SipConfig config = small_config();
  config.constants["norb"] = 16;
  config.worker_threads = 2;
  config.opt_level = 2;
  sip::Sip sip(config);
  const sip::RunResult result = sip.run_source(chem::comm_storm_source());
  const auto& ex = result.profile.executor;
  ASSERT_TRUE(ex.any());
  // put C += tmp behind the contraction that made tmp: RAW edges are
  // guaranteed because the put is enqueued while its producer is still
  // in flight. WAR/WAW edges are only counted when the earlier access
  // is still live at enqueue time, so they can legitimately be zero
  // when prior entries retire quickly; the split must simply add up.
  EXPECT_GT(ex.raw_deps, 0);
  EXPECT_GE(ex.raw_deps + ex.war_deps + ex.waw_deps, ex.hazard_stalls);
  EXPECT_NE(result.profile.to_string().find("RAW"), std::string::npos);
}

TEST(ExecutorStatsTest, WindowSafePardoSkipsPerIterationDrains) {
  SipConfig config = small_config();
  config.constants["norb"] = 16;
  config.worker_threads = 2;

  config.opt_level = 0;
  sip::Sip sip0(config);
  const sip::RunResult r0 = sip0.run_source(chem::comm_storm_source());

  config.opt_level = 2;
  sip::Sip sip2(config);
  const sip::RunResult r2 = sip2.run_source(chem::comm_storm_source());

  // To rounding, not bit for bit: concurrent put += accumulate order at
  // the owner varies run to run (see BitIdentityTest).
  EXPECT_NEAR(r2.scalar("cnorm2"), r0.scalar("cnorm2"),
              1e-10 * std::abs(r0.scalar("cnorm2")));
  // The proven-safe sweep defers its per-iteration drain to a retire
  // entry: the drain count must drop sharply.
  EXPECT_LT(r2.profile.executor.drains, r0.profile.executor.drains);
}

}  // namespace
}  // namespace sia
