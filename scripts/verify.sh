#!/bin/sh
# Full verification: the tier-1 suite, the ThreadSanitizer subset, and
# the chaos/process matrix, in that order (fastest signal first).
#
#   scripts/verify.sh [build-dir]     default build dir: ./build
#
# The tsan pass needs a tree configured with -DSIA_TSAN=ON to actually
# instrument; on a plain tree it still runs the same tests uninstrumented
# (which is the tier-1 superset, so it is cheap). Likewise `ctest -L asan`
# in a -DSIA_ASAN=ON tree; that subset is not run here by default because
# the sanitizers cannot share one tree.
set -e

root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build=${1:-"$root/build"}

cmake -B "$build" -S "$root"
cmake --build "$build" -j "$(nproc)"

cd "$build"
echo "== tier-1 =="
ctest --output-on-failure
echo "== tsan subset =="
ctest --output-on-failure -L tsan
echo "== chaos matrix =="
ctest --output-on-failure -L chaos
echo "== planner bench =="
# End-to-end autotune check: plans, runs, calibrates, and exits nonzero
# if a tuned run's checksum drifts from the hand-configured cells. The
# JSON stays in the build tree; the committed BENCH_plan.json is only
# refreshed by the bench_json target.
"$build/bench/plan_json" "$build/BENCH_plan.json"
echo "verify: all suites passed"
